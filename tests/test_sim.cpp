// Tests for the batched multi-port synchronous engine: delivery semantics, halting,
// decisions, crash semantics (clean and partial), metrics accounting,
// Byzantine accounting, and the adversary strategy constructors.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "graph/families.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace lft::sim {
namespace {

using test::idle_process;
using test::lambda_process;

TEST(Engine, MessageSentAtRoundRArrivesAtRPlusOne) {
  Engine engine(2, {});
  std::vector<Round> arrivals;
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() == 0) ctx.send(1, 7, 42);
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  engine.set_process(1, lambda_process([&](Context& ctx, const Inbox& inbox) {
                       for (const auto& m : inbox) {
                         arrivals.push_back(ctx.round());
                         EXPECT_EQ(m.from, 0);
                         EXPECT_EQ(m.tag, 7u);
                         EXPECT_EQ(m.value, 42u);
                       }
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  const Report report = engine.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 1);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.rounds, 2);
}

TEST(Engine, InboxSortedBySender) {
  Engine engine(4, {});
  std::vector<NodeId> senders;
  for (NodeId v = 1; v < 4; ++v) {
    engine.set_process(v, lambda_process([](Context& ctx, const Inbox&) {
                         if (ctx.round() == 0) ctx.send(0, 0, 0);
                         ctx.halt();
                       }));
  }
  engine.set_process(0, lambda_process([&](Context& ctx, const Inbox& inbox) {
                       for (const auto& m : inbox) senders.push_back(m.from);
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  engine.run();
  ASSERT_EQ(senders.size(), 3u);
  EXPECT_EQ(senders, (std::vector<NodeId>{1, 2, 3}));
}

TEST(Engine, HaltedNodeStopsActingButFinalSendsDeliver) {
  Engine engine(2, {});
  int rounds_acted = 0;
  int received = 0;
  engine.set_process(0, lambda_process([&](Context& ctx, const Inbox&) {
                       ++rounds_acted;
                       ctx.send(1, 0, 1);
                       ctx.halt();  // halt in the same round as the send
                     }));
  engine.set_process(1, lambda_process([&](Context& ctx, const Inbox& inbox) {
                       received += static_cast<int>(inbox.size());
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  engine.run();
  EXPECT_EQ(rounds_acted, 1);
  EXPECT_EQ(received, 1);  // the send from the halting round was delivered
}

TEST(Engine, HaltedNodeDoesNotReceive) {
  Engine engine(2, {});
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       ctx.halt();  // halts at round 0
                     }));
  engine.set_process(1, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() == 1) ctx.send(0, 0, 1);
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  const Report report = engine.run();
  // Message to a halted node is dropped, not queued: metrics count the send,
  // node 0 never reactivates.
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.metrics.messages_total, 1);
}

TEST(Engine, DecisionIsRecordedAndIrrevocableSameValueOk) {
  Engine engine(1, {});
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       ctx.decide(5);
                       ctx.decide(5);  // same value: fine
                       EXPECT_TRUE(ctx.has_decided());
                       EXPECT_EQ(ctx.decision(), 5u);
                       ctx.halt();
                     }));
  const Report report = engine.run();
  EXPECT_TRUE(report.nodes[0].decided);
  EXPECT_EQ(report.nodes[0].decision, 5u);
  EXPECT_EQ(report.decided_count(), 1);
  EXPECT_EQ(report.agreed_value(), 5u);
}

TEST(Engine, CleanCrashDropsAllSendsAndFutureActivity) {
  EngineConfig config;
  config.crash_budget = 1;
  Engine engine(3, config);
  int acted = 0;
  engine.set_process(0, lambda_process([&](Context& ctx, const Inbox&) {
                       ++acted;
                       ctx.send(1, 0, 1);
                       ctx.send(2, 0, 1);
                     }));
  for (NodeId v : {NodeId{1}, NodeId{2}}) {
    engine.set_process(v, lambda_process([](Context& ctx, const Inbox& inbox) {
                         EXPECT_TRUE(inbox.empty());
                         if (ctx.round() >= 2) ctx.halt();
                       }));
  }
  engine.add_fault_injector(make_scheduled({CrashEvent{0, 0, 0.0}}));
  const Report report = engine.run();
  EXPECT_EQ(acted, 1);  // acted only in round 0
  EXPECT_TRUE(report.nodes[0].crashed);
  EXPECT_EQ(report.nodes[0].crash_round, 0);
  EXPECT_EQ(report.metrics.messages_total, 0);
  EXPECT_EQ(report.crashed_count(), 1);
}

TEST(Engine, PartialCrashKeepsSelectedSends) {
  EngineConfig config;
  config.crash_budget = 1;
  Engine engine(3, config);
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       ctx.send(1, 0, 1);
                       ctx.send(2, 0, 1);
                     }));
  std::vector<NodeId> receivers;
  for (NodeId v : {NodeId{1}, NodeId{2}}) {
    engine.set_process(v, lambda_process([&, v](Context& ctx, const Inbox& inbox) {
                         if (!inbox.empty()) receivers.push_back(v);
                         if (ctx.round() >= 1) ctx.halt();
                       }));
  }

  class KeepToOne final : public FaultInjector {
   public:
    void on_round(const EngineView& view, FaultController& control) override {
      if (view.round() == 0) {
        control.crash_partial(0, [](const Message& m) { return m.to == 1; });
      }
    }
  };
  engine.add_fault_injector(std::make_unique<KeepToOne>());
  const Report report = engine.run();
  EXPECT_EQ(receivers, (std::vector<NodeId>{1}));
  EXPECT_EQ(report.metrics.messages_total, 1);  // only the kept message counts
}

TEST(Engine, CrashedNodeDoesNotReceive) {
  EngineConfig config;
  config.crash_budget = 1;
  Engine engine(2, config);
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() == 0) ctx.send(1, 0, 1);
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  int received = 0;
  engine.set_process(1, lambda_process([&](Context&, const Inbox& inbox) {
                       received += static_cast<int>(inbox.size());
                     }));
  // Node 1 crashes in round 0, before delivery of node 0's round-0 send.
  engine.add_fault_injector(make_scheduled({CrashEvent{0, 1, 0.0}}));
  const Report report = engine.run();
  EXPECT_EQ(received, 0);
  EXPECT_TRUE(report.completed);
}

TEST(Engine, MetricsCountMessagesAndBits) {
  Engine engine(2, {});
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       ctx.send(1, 0, 1, 1);
                       ctx.send(1, 0, 2, 10);
                       ctx.halt();
                     }));
  engine.set_process(1, idle_process());
  const Report report = engine.run();
  EXPECT_EQ(report.metrics.messages_total, 2);
  EXPECT_EQ(report.metrics.bits_total, 11);
  EXPECT_EQ(report.metrics.max_sends_per_node, 2);
}

TEST(Engine, ByzantineAccountingSeparatesHonestTraffic) {
  Engine engine(3, {});
  engine.mark_byzantine(2);
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       ctx.send(1, 0, 0, 4);
                       ctx.halt();
                     }));
  engine.set_process(1, idle_process());
  engine.set_process(2, lambda_process([](Context& ctx, const Inbox&) {
                       for (int i = 0; i < 10; ++i) ctx.send(1, 0, 0, 100);
                       ctx.halt();
                     }));
  const Report report = engine.run();
  EXPECT_EQ(report.metrics.messages_total, 11);
  EXPECT_EQ(report.metrics.messages_honest, 1);
  EXPECT_EQ(report.metrics.bits_honest, 4);
  EXPECT_TRUE(report.nodes[2].byzantine);
}

TEST(Engine, MaxRoundsCapReportsIncomplete) {
  EngineConfig config;
  config.max_rounds = 5;
  Engine engine(1, config);
  engine.set_process(0, lambda_process([](Context&, const Inbox&) {
                       // never halts
                     }));
  const Report report = engine.run();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.rounds, 5);
}

TEST(Engine, AgreementHelperDetectsDisagreement) {
  Engine engine(2, {});
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       ctx.decide(0);
                       ctx.halt();
                     }));
  engine.set_process(1, lambda_process([](Context& ctx, const Inbox&) {
                       ctx.decide(1);
                       ctx.halt();
                     }));
  const Report report = engine.run();
  EXPECT_EQ(report.agreed_value(), std::nullopt);
  EXPECT_TRUE(report.all_nonfaulty_decided());
}

// ---- adversary constructors -----------------------------------------------------

TEST(Adversary, RandomScheduleHasDistinctVictimsInWindow) {
  const auto events = random_crash_schedule(100, 20, 5, 15, 0.0, 77);
  ASSERT_EQ(events.size(), 20u);
  std::vector<bool> seen(100, false);
  for (const auto& ev : events) {
    EXPECT_GE(ev.round, 5);
    EXPECT_LE(ev.round, 15);
    EXPECT_FALSE(seen[static_cast<std::size_t>(ev.node)]) << "duplicate victim";
    seen[static_cast<std::size_t>(ev.node)] = true;
  }
}

TEST(Adversary, BurstScheduleCrashesAllAtOnce) {
  const auto events = burst_crash_schedule(50, 10, 3, 1);
  for (const auto& ev : events) EXPECT_EQ(ev.round, 3);
}

TEST(Adversary, StaggeredScheduleSpacesCrashes) {
  const auto events = staggered_crash_schedule(50, 5, 2, 4, 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].round, 2 + 4 * static_cast<Round>(i));
  }
}

TEST(Adversary, IsolationTargetsNeighbors) {
  const auto g = graph::star_graph(6);  // vertex 0 is the hub
  const auto events = isolation_crash_schedule(g, 1, 10);
  ASSERT_EQ(events.size(), 1u);  // leaf 1's only neighbor is the hub
  EXPECT_EQ(events[0].node, 0);
}

TEST(Adversary, BudgetOverdraftAborts) {
  EngineConfig config;
  config.crash_budget = 1;
  Engine engine(3, config);
  for (NodeId v = 0; v < 3; ++v) {
    engine.set_process(v, lambda_process([](Context& ctx, const Inbox&) {
                         if (ctx.round() >= 3) ctx.halt();
                       }));
  }
  engine.add_fault_injector(make_scheduled({CrashEvent{0, 0, 0.0}, CrashEvent{0, 1, 0.0}}));
  EXPECT_DEATH(engine.run(), "crash budget exceeded");
}

TEST(Adversary, CrashingHaltedNodeIsFreeNoOp) {
  // The paper disregards crashes of nodes that already halted; the engine
  // must not charge the budget for them.
  EngineConfig config;
  config.crash_budget = 1;
  Engine engine(2, config);
  engine.set_process(0, idle_process());  // halts at round 0
  engine.set_process(1, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() >= 2) ctx.halt();
                     }));
  // Round 1: try to crash the halted node 0 and then node 1; only node 1's
  // crash should consume budget, so no overdraft occurs.
  engine.add_fault_injector(make_scheduled({CrashEvent{1, 0, 0.0}, CrashEvent{1, 1, 0.0}}));
  const Report report = engine.run();
  EXPECT_FALSE(report.nodes[0].crashed);
  EXPECT_TRUE(report.nodes[0].halted);
  EXPECT_TRUE(report.nodes[1].crashed);
}

TEST(Adversary, ProbeDisruptorCrashesBusiestSender) {
  EngineConfig config;
  config.crash_budget = 1;
  Engine engine(3, config);
  // Node 0 sends 2 messages, node 1 sends 1; disruptor should kill node 0.
  engine.set_process(0, lambda_process([](Context& ctx, const Inbox&) {
                       ctx.send(1, 0, 0);
                       ctx.send(2, 0, 0);
                     }));
  engine.set_process(1, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() == 0) ctx.send(2, 0, 0);
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  engine.set_process(2, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  engine.add_fault_injector(std::make_unique<ProbeDisruptorAdversary>(1, 1));
  const Report report = engine.run();
  EXPECT_TRUE(report.nodes[0].crashed);
  EXPECT_FALSE(report.nodes[1].crashed);
}

}  // namespace
}  // namespace lft::sim
