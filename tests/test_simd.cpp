// Tests for the runtime-dispatched SIMD layer (common/simd.hpp).
//
// Two layers of coverage:
//  1. Primitive kernels: every tier the host can execute is held bit-identical
//     to the scalar reference at lane-boundary sizes (0, 1, lane-1, lane,
//     lane+1, multi-block, unaligned record bases, ragged byte tails).
//  2. Whole-engine bit-identity: Report fingerprints and every RoundDigest
//     must agree across forced tiers x serial/parallel stepping x scratch
//     adoption on the fanout / consensus / gossip / byzantine workloads.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "byzantine/ab_consensus.hpp"
#include "common/simd.hpp"
#include "core/consensus.hpp"
#include "core/gossip.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/trace.hpp"
#include "test_util.hpp"

namespace lft {
namespace {

using simd::Tier;

// Tiers this binary compiled in AND this CPU can execute, scalar excluded.
std::vector<Tier> fast_tiers() {
  std::vector<Tier> tiers;
  for (const Tier t : {Tier::kAvx2, Tier::kAvx512}) {
    if (simd::tier_compiled(t) && t <= simd::detect_tier()) tiers.push_back(t);
  }
  return tiers;
}

// Lane-boundary sizes for both 8-lane (AVX2 u32) and 16-lane (AVX-512 u32)
// kernels, plus multi-block and ragged counts.
const std::size_t kSizes[] = {0, 1, 3, 4, 5, 7,  8,  9,  15, 16, 17,
                              31, 32, 33, 63, 64, 65, 100, 129, 1000};

constexpr std::size_t kRecordBytes = 40;

// Deterministic records with bounded (to, tag) at byte offsets 4 / 8 and
// random junk elsewhere, laid out like sim::Message. `misalign` shifts the
// base pointer off 8-byte alignment to exercise unaligned loads.
struct RecordBuf {
  std::vector<std::byte> storage;
  std::byte* records = nullptr;

  RecordBuf(std::size_t n, std::uint32_t to_limit, std::uint32_t tag_limit,
            std::size_t misalign, std::uint64_t seed) {
    storage.resize(n * kRecordBytes + misalign + 8);
    records = storage.data() + misalign;
    std::mt19937_64 rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      std::byte* r = records + i * kRecordBytes;
      for (std::size_t b = 0; b < kRecordBytes; b += 8) {
        const std::uint64_t word = rng();
        std::memcpy(r + b, &word, 8);
      }
      const std::uint32_t to = static_cast<std::uint32_t>(rng()) % to_limit;
      const std::uint32_t tag = static_cast<std::uint32_t>(rng()) % tag_limit;
      std::memcpy(r + 4, &to, 4);
      std::memcpy(r + 8, &tag, 4);
    }
  }
};

TEST(SimdDispatch, TierNamesRoundTrip) {
  for (const Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512, Tier::kAuto}) {
    const auto parsed = simd::parse_tier(simd::tier_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(simd::parse_tier("sse9").has_value());
  EXPECT_FALSE(simd::parse_tier("").has_value());
}

TEST(SimdDispatch, ScalarAlwaysCompiled) {
  EXPECT_TRUE(simd::tier_compiled(Tier::kScalar));
  EXPECT_NE(simd::detect_tier(), Tier::kAuto);
}

TEST(SimdDispatch, EnvOverrideClampsDownOnly) {
  EXPECT_EQ(simd::apply_env_override(nullptr, Tier::kAvx512), Tier::kAvx512);
  EXPECT_EQ(simd::apply_env_override("", Tier::kAvx512), Tier::kAvx512);
  EXPECT_EQ(simd::apply_env_override("scalar", Tier::kAvx512), Tier::kScalar);
  EXPECT_EQ(simd::apply_env_override("avx2", Tier::kAvx512), Tier::kAvx2);
  EXPECT_EQ(simd::apply_env_override("avx512", Tier::kAvx2), Tier::kAvx2);
  EXPECT_EQ(simd::apply_env_override("avx512", Tier::kScalar), Tier::kScalar);
  EXPECT_EQ(simd::apply_env_override("auto", Tier::kAvx2), Tier::kAvx2);
  EXPECT_EQ(simd::apply_env_override("garbage", Tier::kAvx2), Tier::kAvx2);
}

TEST(SimdDispatch, ResolveTierNeverReturnsAuto) {
  for (const Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512, Tier::kAuto}) {
    const Tier resolved = simd::resolve_tier(t);
    EXPECT_NE(resolved, Tier::kAuto);
    EXPECT_LE(resolved, simd::detect_tier());
  }
  EXPECT_EQ(simd::resolve_tier(Tier::kScalar), Tier::kScalar);
}

TEST(SimdKernels, HistogramMatchesScalar) {
  for (const Tier tier : fast_tiers()) {
    for (const std::size_t n : kSizes) {
      std::mt19937_64 rng(n * 1009 + 1);
      const std::uint32_t domain = 37;
      std::vector<std::uint32_t> keys(n);
      for (auto& k : keys) k = static_cast<std::uint32_t>(rng()) % domain;
      std::vector<std::uint32_t> want(domain, 0);
      std::vector<std::uint32_t> got(domain, 0);
      simd::histogram_u32(Tier::kScalar, keys.data(), n, want.data());
      simd::histogram_u32(tier, keys.data(), n, got.data());
      EXPECT_EQ(want, got) << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdKernels, HistogramHeavyDuplicates) {
  // All-equal and two-value keys stress the AVX-512 conflict path.
  for (const Tier tier : fast_tiers()) {
    for (const std::size_t n : {16u, 17u, 48u, 1000u}) {
      std::vector<std::uint32_t> keys(n, 5);
      for (std::size_t i = 0; i < n; i += 3) keys[i] = 11;
      std::vector<std::uint32_t> want(16, 0);
      std::vector<std::uint32_t> got(16, 0);
      simd::histogram_u32(Tier::kScalar, keys.data(), n, want.data());
      simd::histogram_u32(tier, keys.data(), n, got.data());
      EXPECT_EQ(want, got) << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdKernels, ExclusiveScanMatchesScalar) {
  for (const Tier tier : fast_tiers()) {
    for (const std::size_t n : kSizes) {
      std::mt19937_64 rng(n * 31 + 7);
      std::vector<std::uint32_t> want(n);
      // Include large values so the u32 total wraps on bigger sizes.
      for (auto& v : want) v = static_cast<std::uint32_t>(rng());
      std::vector<std::uint32_t> got = want;
      const std::uint32_t want_total =
          simd::exclusive_scan_u32(Tier::kScalar, want.data(), n);
      const std::uint32_t got_total =
          simd::exclusive_scan_u32(tier, got.data(), n);
      EXPECT_EQ(want, got) << simd::tier_name(tier) << " n=" << n;
      EXPECT_EQ(want_total, got_total) << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdKernels, BuildKeysMatchesScalarIncludingUnalignedBase) {
  for (const Tier tier : fast_tiers()) {
    for (const std::size_t n : kSizes) {
      for (const std::size_t misalign : {0u, 1u, 5u}) {
        RecordBuf buf(n, /*to_limit=*/53, /*tag_limit=*/13, misalign,
                      /*seed=*/n * 7919 + misalign);
        const unsigned tag_bits = 4;
        std::vector<std::uint32_t> want(n + 1, 0xDEADBEEF);
        std::vector<std::uint32_t> got(n + 1, 0xDEADBEEF);
        const std::uint32_t want_max = simd::build_keys40(
            Tier::kScalar, buf.records, n, tag_bits, want.data());
        const std::uint32_t got_max =
            simd::build_keys40(tier, buf.records, n, tag_bits, got.data());
        EXPECT_EQ(want, got)
            << simd::tier_name(tier) << " n=" << n << " mis=" << misalign;
        EXPECT_EQ(want_max, got_max) << simd::tier_name(tier) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, ScatterMatchesScalarAndIsStable) {
  for (const Tier tier : fast_tiers()) {
    for (const std::size_t n : kSizes) {
      RecordBuf buf(n, /*to_limit=*/7, /*tag_limit=*/3, /*misalign=*/1,
                    /*seed=*/n * 104729 + 3);
      const unsigned tag_bits = 2;
      const std::size_t domain = 7u << tag_bits;
      std::vector<std::uint32_t> keys(n);
      simd::build_keys40(Tier::kScalar, buf.records, n, tag_bits, keys.data());

      std::vector<std::uint32_t> slots(domain, 0);
      simd::histogram_u32(Tier::kScalar, keys.data(), n, slots.data());
      const std::uint32_t total =
          simd::exclusive_scan_u32(Tier::kScalar, slots.data(), domain);
      ASSERT_EQ(total, n);

      std::vector<std::uint32_t> want_slots = slots;
      std::vector<std::uint32_t> got_slots = slots;
      std::vector<std::byte> want(n * kRecordBytes, std::byte{0xAA});
      std::vector<std::byte> got(n * kRecordBytes, std::byte{0xAA});
      simd::scatter_records40(Tier::kScalar, buf.records, n, keys.data(),
                              want_slots.data(), want.data());
      simd::scatter_records40(tier, buf.records, n, keys.data(),
                              got_slots.data(), got.data());
      EXPECT_EQ(want, got) << simd::tier_name(tier) << " n=" << n;
      EXPECT_EQ(want_slots, got_slots) << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdKernels, XorMulWordsMatchesScalarOnRaggedTails) {
  for (const Tier tier : fast_tiers()) {
    for (std::size_t len = 0; len <= 140; ++len) {
      std::mt19937_64 rng(len * 6271 + 11);
      std::vector<std::byte> bytes(len + 3);
      for (auto& b : bytes) b = static_cast<std::byte>(rng());
      const std::uint64_t seed = rng();
      const std::uint64_t salt = rng() | 1;
      // Both aligned and deliberately misaligned base pointers.
      for (const std::size_t off : {0u, 3u}) {
        const std::uint64_t want = simd::xor_mul_words(
            Tier::kScalar, seed, bytes.data() + off, len, salt);
        const std::uint64_t got =
            simd::xor_mul_words(tier, seed, bytes.data() + off, len, salt);
        EXPECT_EQ(want, got)
            << simd::tier_name(tier) << " len=" << len << " off=" << off;
      }
    }
  }
}

TEST(SimdKernels, SumHeadersMatchesScalar) {
  for (const Tier tier : fast_tiers()) {
    for (const std::size_t n : kSizes) {
      for (const std::size_t misalign : {0u, 4u}) {
        RecordBuf buf(n, /*to_limit=*/1u << 30, /*tag_limit=*/1u << 20,
                      misalign, /*seed=*/n * 52711 + misalign);
        const std::uint64_t want =
            simd::sum_headers40(Tier::kScalar, buf.records, n);
        const std::uint64_t got = simd::sum_headers40(tier, buf.records, n);
        EXPECT_EQ(want, got)
            << simd::tier_name(tier) << " n=" << n << " mis=" << misalign;
      }
    }
  }
}

TEST(SimdKernels, XorMulWordsMatchesDigestBody) {
  // The kernel is the batch form of sim::digest_body: same result as the
  // scalar digest formula for whole messages.
  std::mt19937_64 rng(99);
  std::vector<std::byte> body(77);
  for (auto& b : body) b = static_cast<std::byte>(rng());
  sim::Message m;
  m.from = 3;
  m.to = 9;
  m.tag = 2;
  m.value = 0x1234;
  m.bits = 0x5678;
  m.set_body({body.data(), body.size()});
  const std::uint64_t header_word = sim::digest_header(m);
  const std::uint64_t want = sim::digest_body(header_word, m.body());
  const std::uint64_t got =
      simd::xor_mul_words(simd::detect_tier(), header_word, body.data(),
                          body.size(), simd::detail::kMulBody);
  EXPECT_EQ(want, got);
}

// ---- Layer 2: whole-engine bit-identity ------------------------------------
//
// The dispatch tier is a speed knob, never a semantics knob: a forced tier
// must reproduce the scalar reference's Report fingerprint AND every
// per-round digest, under the serial and parallel steppers, with and
// without scratch adoption. Each workload below routes the tier through a
// different entry point (EngineConfig::simd directly, core::RunOptions::simd
// through the protocol runners) so the plumbing is covered end to end.

/// Everything an execution exposes that could possibly differ: the Report
/// fingerprint plus the full RoundDigest stream.
struct Capture {
  std::uint64_t fingerprint = 0;
  std::vector<sim::RoundDigest> rounds;
};

class DigestLog final : public sim::TraceSink {
 public:
  void on_round(const sim::RoundDigest& digest) override { rounds.push_back(digest); }
  std::vector<sim::RoundDigest> rounds;
};

void expect_capture_eq(const Capture& ref, const Capture& got, const std::string& label) {
  EXPECT_EQ(ref.fingerprint, got.fingerprint) << label;
  ASSERT_EQ(ref.rounds.size(), got.rounds.size()) << label;
  for (std::size_t r = 0; r < ref.rounds.size(); ++r) {
    EXPECT_TRUE(ref.rounds[r] == got.rounds[r]) << label << " diverges at round " << r;
  }
}

/// One engine/runner configuration under test. The scalar serial cold run is
/// the reference every other combination must match bit for bit.
struct Combo {
  simd::Tier tier = Tier::kScalar;
  int threads = 1;
  bool scratch = false;
};

std::vector<Combo> all_combos() {
  std::vector<Tier> tiers{Tier::kScalar};
  for (const Tier t : fast_tiers()) tiers.push_back(t);
  std::vector<Combo> combos;
  for (const Tier tier : tiers) {
    for (const int threads : {1, 4}) {
      for (const bool scratch : {false, true}) combos.push_back({tier, threads, scratch});
    }
  }
  return combos;
}

std::string combo_label(const char* workload, const Combo& c) {
  return test::case_name(workload, std::string(simd::tier_name(c.tier)), "_t", c.threads,
                         c.scratch ? "_scratch" : "_cold");
}

/// Runs `workload` for every tier x stepper x scratch combination and holds
/// each capture to the scalar/serial/cold reference.
template <typename Workload>
void check_identity(const char* name, Workload&& workload) {
  const Capture ref = workload(Combo{});
  for (const Combo& c : all_combos()) {
    if (c.tier == Tier::kScalar && c.threads == 1 && !c.scratch) continue;
    expect_capture_eq(ref, workload(c), combo_label(name, c));
  }
}

TEST(SimdEngineIdentity, FanoutTiersSteppersScratch) {
  // n >= 256 engages the parallel stepper; mixed bodied/bodyless sends cover
  // both the inline bodyless fast path and the arena body path.
  check_identity("fanout", [](const Combo& c) {
    static constexpr NodeId kN = 300;
    static constexpr Round kRounds = 4;
    DigestLog log;
    sim::EngineScratch scratch;
    sim::EngineConfig config;
    config.threads = c.threads;
    config.scratch = c.scratch ? &scratch : nullptr;
    config.trace = &log;
    config.simd = c.tier;
    sim::Engine engine(kN, config);
    const std::vector<std::byte> body(24, std::byte{0x5A});
    for (NodeId v = 0; v < kN; ++v) {
      engine.set_process(v, test::lambda_process([&body](sim::Context& ctx,
                                                         const sim::Inbox&) {
        if (ctx.round() >= kRounds) {
          ctx.halt();
          return;
        }
        for (NodeId to = 0; to < kN; to += 3) {
          const auto tag = static_cast<std::uint32_t>(to % 7);
          if (to % 5 == 0) {
            ctx.send(to, tag, static_cast<std::uint64_t>(to), 1 + body.size() * 8, body);
          } else {
            ctx.send(to, tag, static_cast<std::uint64_t>(to));
          }
        }
      }));
    }
    const sim::Report report = engine.run();
    return Capture{scenarios::fingerprint(report), std::move(log.rounds)};
  });
}

TEST(SimdEngineIdentity, ConsensusWithCrashesTiersSteppersScratch) {
  // Planned crashes exercise the delivery slow path (compaction invalidates
  // the send-time sort keys; the traced header sum subtracts dropped
  // messages) — exactly where a tier-dependent bug would surface.
  check_identity("consensus", [](const Combo& c) {
    constexpr NodeId kN = 48;
    constexpr std::int64_t kT = 6;
    const auto params = core::ConsensusParams::practical(kN, kT);
    std::vector<int> inputs(static_cast<std::size_t>(kN));
    for (std::size_t v = 0; v < inputs.size(); ++v) inputs[v] = static_cast<int>(v % 2);
    sim::FaultPlan plan;
    plan.crash_at(3, 1).crash_at(17, 2, /*keep_fraction=*/0.5).omission(9, 1, 3, true, true);
    DigestLog log;
    sim::EngineScratch scratch;
    core::RunOptions options;
    options.threads = c.threads;
    options.scratch = c.scratch ? &scratch : nullptr;
    options.trace = &log;
    options.simd = c.tier;
    const sim::Report report = core::run_system(
        kN, kT,
        [&](NodeId v) {
          return core::make_few_crashes_process(params, v, inputs[static_cast<std::size_t>(v)]);
        },
        sim::make_plan_injector(plan), options);
    return Capture{scenarios::fingerprint(report), std::move(log.rounds)};
  });
}

TEST(SimdEngineIdentity, GossipTiersSteppersScratch) {
  check_identity("gossip", [](const Combo& c) {
    constexpr NodeId kN = 64;
    const auto params = core::GossipParams::practical(kN, 5);
    std::vector<std::uint64_t> rumors(static_cast<std::size_t>(kN));
    for (std::size_t v = 0; v < rumors.size(); ++v) rumors[v] = 0xC0FFEE00u + v;
    DigestLog log;
    sim::EngineScratch scratch;
    core::RunOptions options;
    options.threads = c.threads;
    options.scratch = c.scratch ? &scratch : nullptr;
    options.trace = &log;
    options.simd = c.tier;
    const auto outcome = core::run_gossip(params, rumors, nullptr, options);
    EXPECT_TRUE(outcome.all_good());
    return Capture{scenarios::fingerprint(outcome.report), std::move(log.rounds)};
  });
}

TEST(SimdEngineIdentity, ByzantineTiersSteppersScratch) {
  // Takeovers make traffic adversarial (equivocation + flooding): message
  // multisets per round are large and irregular, and the honest/total metric
  // split must not move with the tier.
  check_identity("byzantine", [](const Combo& c) {
    const auto params = byzantine::AbParams::practical(40, 3);
    std::vector<std::uint64_t> inputs(40, 0);
    inputs[11] = 1;
    sim::FaultPlan plan;
    plan.takeover(1, 0, "equivocate").takeover(25, 0, "flood");
    DigestLog log;
    sim::EngineScratch scratch;
    core::RunOptions options;
    options.threads = c.threads;
    options.scratch = c.scratch ? &scratch : nullptr;
    options.trace = &log;
    options.simd = c.tier;
    const auto outcome = byzantine::run_ab_consensus_plan(params, inputs, plan, options);
    EXPECT_TRUE(outcome.termination);
    EXPECT_TRUE(outcome.agreement);
    return Capture{scenarios::fingerprint(outcome.report), std::move(log.rounds)};
  });
}

TEST(SimdEngineIdentity, DelayedDeliveryTiersSteppersScratch) {
  // Timing faults route messages through the due-round delay queue (park in
  // the bucket arena, inject rounds later into the delivery sort) — a code
  // path the other identity workloads never touch. Both a fixed-jitter plan
  // and a GST plan must give the same fingerprint and digest stream on every
  // tier, stepper, and scratch mode; the digests include the v2 `delayed`
  // counter, so a tier- or thread-dependent parking decision cannot hide.
  for (const char* name : {"delay_uniform_jitter", "gst_early_stabilize"}) {
    const auto* scenario = scenarios::find_scenario(name);
    ASSERT_NE(scenario, nullptr) << name;
    check_identity(name, [scenario](const Combo& c) {
      DigestLog log;
      sim::EngineScratch scratch;
      core::RunOptions options;
      options.threads = c.threads;
      options.scratch = c.scratch ? &scratch : nullptr;
      options.trace = &log;
      options.simd = c.tier;
      const auto result =
          scenario->run_at(/*seed=*/9, scenario->n, scenario->t, options);
      EXPECT_TRUE(result.ok) << scenario->name << ": " << result.detail;
      std::uint64_t parked = 0;
      for (const auto& d : log.rounds) parked += d.delayed;
      EXPECT_GT(parked, 0u) << scenario->name << " parked nothing — dead workload";
      return Capture{scenarios::fingerprint(result.report), std::move(log.rounds)};
    });
  }
}

TEST(SimdEngineIdentity, TwoLevelScatterPathMatchesAcrossTiers) {
  // Large-domain large-batch delivery: n = 4096 and m = n * 64 = 262144 per
  // round clears both two-level gates (m >= 1<<18, domain = n << tag_bits =
  // 65536 >= 32768), so the cache-blocked MSD scatter runs instead of the
  // flat one. The blocked permutation must be the identical stable normal
  // form — same fingerprint, same digests — on every tier and stepper.
  static constexpr NodeId kN = 4096;
  static constexpr int kFan = 64;
  static constexpr Round kRounds = 2;
  auto workload = [&](const Combo& c) {
    DigestLog log;
    sim::EngineScratch scratch;
    sim::EngineConfig config;
    config.threads = c.threads;
    config.scratch = c.scratch ? &scratch : nullptr;
    config.trace = &log;
    config.simd = c.tier;
    sim::Engine engine(kN, config);
    for (NodeId v = 0; v < kN; ++v) {
      engine.set_process(v, test::lambda_process([v](sim::Context& ctx, const sim::Inbox&) {
        if (ctx.round() >= kRounds) {
          ctx.halt();
          return;
        }
        for (int i = 0; i < kFan; ++i) {
          const auto to = static_cast<NodeId>(
              (static_cast<std::int64_t>(v) * 31 + i * 17 + ctx.round()) % kN);
          ctx.send(to, static_cast<std::uint32_t>(i % 7), static_cast<std::uint64_t>(i));
        }
      }));
    }
    const sim::Report report = engine.run();
    EXPECT_EQ(report.metrics.peak_round_messages, static_cast<std::int64_t>(kN) * kFan);
    return Capture{scenarios::fingerprint(report), std::move(log.rounds)};
  };
  const Capture ref = workload(Combo{});
  // The two-level path is stepper-independent; cover each tier serial plus
  // one parallel run at the best tier to bound runtime.
  for (const Tier t : fast_tiers()) {
    expect_capture_eq(ref, workload(Combo{t, 1, false}), combo_label("twolevel", {t, 1, false}));
  }
  const Tier best = simd::detect_tier();
  expect_capture_eq(ref, workload(Combo{best, 4, true}), combo_label("twolevel", {best, 4, true}));
}

}  // namespace
}  // namespace lft
