// Fleet mode: the instance-multiplexed FleetRunner must preserve the
// engine's determinism bar — every instance's Report bit-identical to
// running the same (scenario, plan, seed, size) alone in a plain serial
// loop, regardless of fleet concurrency, scratch recycling, submission
// order, or which worker executed it. The headline test queues 1000+ mixed
// scenario instances on a multi-worker pool and checks every fingerprint
// against one-at-a-time execution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/consensus.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/fleet.hpp"
#include "test_util.hpp"

namespace lft {
namespace {

using scenarios::SweepItem;
using sim::EngineScratch;
using sim::FleetConfig;
using sim::FleetRunner;

// ---- FleetRunner basics ----------------------------------------------------

sim::Report tiny_fanout_report(EngineScratch* scratch, NodeId n, Round rounds) {
  sim::EngineConfig config;
  config.scratch = scratch;
  sim::Engine engine(n, config);
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, test::lambda_process([n, rounds](sim::Context& ctx,
                                                           const sim::Inbox& inbox) {
      if (ctx.round() >= rounds) {
        ctx.decide(static_cast<std::uint64_t>(inbox.size()));
        ctx.halt();
        return;
      }
      const std::byte body[8] = {};
      for (NodeId to = 0; to < n; ++to) {
        ctx.send(to, /*tag=*/1, static_cast<std::uint64_t>(ctx.round()), /*bits=*/8,
                 sim::PayloadView(body, sizeof(body)));
      }
    }));
  }
  return engine.run();
}

TEST(FleetRunner, HandleWaitReadyTake) {
  FleetRunner fleet(FleetConfig{2});
  auto handle = fleet.submit(
      [](EngineScratch* scratch) { return tiny_fanout_report(scratch, 8, 3); });
  ASSERT_TRUE(handle.valid());
  const sim::Report& report = handle.wait();
  EXPECT_TRUE(handle.ready());
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.decided_count(), 8);
  // take() moves the same state's report out (capture before the move —
  // `report` aliases the moved-from object afterwards).
  const Round rounds_before = report.rounds;
  const sim::Report taken = handle.take();
  EXPECT_EQ(taken.rounds, rounds_before);
}

TEST(FleetRunner, HandleOutlivesRunner) {
  FleetRunner::Handle handle;
  EXPECT_FALSE(handle.valid());
  {
    FleetRunner fleet(FleetConfig{2});
    handle = fleet.submit(
        [](EngineScratch* scratch) { return tiny_fanout_report(scratch, 6, 2); });
  }  // destructor drains: the job has run
  ASSERT_TRUE(handle.valid());
  EXPECT_TRUE(handle.ready());
  EXPECT_TRUE(handle.wait().completed);
}

TEST(FleetRunner, CountsAndWaitAll) {
  FleetRunner fleet(FleetConfig{4});
  constexpr int kJobs = 64;
  std::atomic<int> ran{0};
  std::vector<FleetRunner::Handle> handles;
  for (int i = 0; i < kJobs; ++i) {
    handles.push_back(fleet.submit([&ran, i](EngineScratch* scratch) {
      ran.fetch_add(1, std::memory_order_relaxed);
      return tiny_fanout_report(scratch, 4 + (i % 5), 2 + (i % 7));
    }));
  }
  fleet.wait_all();
  EXPECT_EQ(ran.load(), kJobs);
  EXPECT_EQ(fleet.submitted(), kJobs);
  EXPECT_EQ(fleet.completed(), kJobs);
  for (auto& h : handles) EXPECT_TRUE(h.ready());
}

TEST(FleetRunner, ThreadCountClamped) {
  FleetRunner fleet(FleetConfig{0});
  EXPECT_EQ(fleet.threads(), 1);
  FleetRunner wide(FleetConfig{1000});
  EXPECT_EQ(wide.threads(), 64);
}

TEST(FleetRunner, NumaTopologyIsObservableAndRemoteStealsBounded) {
  // Placement is a performance hint only: whatever the host's topology,
  // the counters must be coherent — at least one node, and remote steals
  // are a subset of all steals (identically zero on single-node hosts,
  // where slot placement degrades to the flat scan).
  FleetRunner fleet(FleetConfig{4});
  EXPECT_GE(fleet.numa_nodes(), 1);
  std::atomic<int> ran{0};
  for (int k = 0; k < 32; ++k) {
    (void)fleet.submit([&ran](EngineScratch*) {
      ran.fetch_add(1);
      return sim::Report{};
    });
  }
  fleet.wait_all();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_LE(fleet.stolen_remote(), fleet.stolen());
  if (fleet.numa_nodes() == 1) {
    EXPECT_EQ(fleet.stolen_remote(), 0);
  }
}

// ---- EngineScratch recycling ----------------------------------------------

TEST(EngineScratch, AdoptionIsBitIdenticalToColdBuffers) {
  // Three back-to-back executions in one slot, all adopting the same
  // scratch, vs. cold-buffer references: every Report field must match.
  EngineScratch scratch;
  for (int k = 0; k < 3; ++k) {
    const NodeId n = 12 + 3 * k;
    const Round rounds = 4 + k;
    const sim::Report cold = tiny_fanout_report(nullptr, n, rounds);
    const sim::Report warm = tiny_fanout_report(&scratch, n, rounds);
    EXPECT_EQ(cold.rounds, warm.rounds);
    EXPECT_EQ(cold.completed, warm.completed);
    EXPECT_EQ(cold.metrics.messages_total, warm.metrics.messages_total);
    EXPECT_EQ(cold.metrics.bits_total, warm.metrics.bits_total);
    EXPECT_EQ(cold.metrics.peak_round_messages, warm.metrics.peak_round_messages);
    ASSERT_EQ(cold.nodes.size(), warm.nodes.size());
    for (std::size_t v = 0; v < cold.nodes.size(); ++v) {
      EXPECT_EQ(cold.nodes[v].decided, warm.nodes[v].decided);
      EXPECT_EQ(cold.nodes[v].decision, warm.nodes[v].decision);
      EXPECT_EQ(cold.nodes[v].sends, warm.nodes[v].sends);
    }
  }
}

TEST(EngineScratch, RecyclesThroughProtocolRunners) {
  // run_system with a shared scratch across heterogeneous consensus sizes
  // must reproduce the cold-run fingerprints.
  EngineScratch scratch;
  for (const NodeId n : {48, 64, 48}) {
    const std::int64_t t = n / 8;
    const auto params = core::ConsensusParams::practical(n, t);
    const auto inputs = std::vector<int>(static_cast<std::size_t>(n), 1);
    auto factory = [&](NodeId v) {
      return core::make_few_crashes_process(params, v, inputs[static_cast<std::size_t>(v)]);
    };
    core::RunOptions warm_options;
    warm_options.scratch = &scratch;
    const auto cold = core::run_system(n, t, factory, nullptr, {});
    const auto warm = core::run_system(n, t, factory, nullptr, warm_options);
    EXPECT_EQ(scenarios::fingerprint(cold), scenarios::fingerprint(warm)) << "n=" << n;
  }
}

TEST(EngineScratch, CountsAdoptionsAndRecycles) {
  EngineScratch scratch;
  EXPECT_EQ(scratch.adoptions, 0);
  EXPECT_EQ(scratch.recycles, 0);
  (void)tiny_fanout_report(&scratch, 10, 2);
  EXPECT_EQ(scratch.adoptions, 1);
  EXPECT_EQ(scratch.recycles, 0);  // first adoption found cold buffers
  (void)tiny_fanout_report(&scratch, 10, 2);
  (void)tiny_fanout_report(&scratch, 14, 3);
  EXPECT_EQ(scratch.adoptions, 3);
  EXPECT_EQ(scratch.recycles, 2);  // later adoptions found warm buffers
}

TEST(FleetRunner, ScratchStatsCountEveryInstance) {
  constexpr int kJobs = 48;
  constexpr int kWorkers = 4;
  FleetRunner fleet(FleetConfig{kWorkers, /*reuse_scratch=*/true});
  for (int i = 0; i < kJobs; ++i) {
    (void)fleet.submit(
        [i](EngineScratch* scratch) { return tiny_fanout_report(scratch, 8 + (i % 3), 2); });
  }
  fleet.wait_all();  // stats are exact only after wait_all (see fleet.hpp)
  EXPECT_EQ(fleet.scratch_adoptions(), kJobs);
  // Each worker's first instance finds cold buffers; everything after
  // recycles. Work stealing decides the split, so only bound it.
  EXPECT_GE(fleet.scratch_recycles(), kJobs - kWorkers);
  EXPECT_LT(fleet.scratch_recycles(), kJobs);
}

TEST(FleetRunner, ScratchStatsZeroWhenReuseDisabled) {
  FleetRunner fleet(FleetConfig{2, /*reuse_scratch=*/false});
  for (int i = 0; i < 8; ++i) {
    (void)fleet.submit([](EngineScratch* scratch) { return tiny_fanout_report(scratch, 8, 2); });
  }
  fleet.wait_all();
  EXPECT_EQ(fleet.scratch_adoptions(), 0);
  EXPECT_EQ(fleet.scratch_recycles(), 0);
}

// ---- the acceptance bar: 1000+ mixed instances, bit-identical --------------

std::vector<SweepItem> mixed_thousand() {
  // 8 scenarios x 64 seeds x 2 sizes = 1024 instances, spanning crash,
  // omission, partition, link, byzantine, and mixed fault classes.
  static const std::vector<NodeId> kSizes = {48, 64};
  static const char* kScenarios[] = {
      "crash_staggered_drip",  "crash_partial_sends", "omission_send_quorum",
      "omission_recv_blackout", "partition_split_heal", "link_flaky_mesh",
      "mixed_crash_omission_split", "byz_silent_little"};
  std::vector<std::uint64_t> seeds(64);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 1 + static_cast<std::uint64_t>(i);
  std::vector<SweepItem> items;
  for (const char* name : kScenarios) {
    auto expanded = scenarios::sweep(name, seeds, kSizes);
    items.insert(items.end(), expanded.begin(), expanded.end());
  }
  return items;
}

TEST(FleetSweep, ThousandMixedInstancesBitIdenticalToSerial) {
  const auto items = mixed_thousand();
  ASSERT_GE(items.size(), 1000u);

  FleetRunner fleet(FleetConfig{8, /*reuse_scratch=*/true});
  const auto outcomes = scenarios::run_sweep(fleet, items);
  ASSERT_EQ(outcomes.size(), items.size());
  fleet.wait_all();  // handles are fulfilled just before the counter bumps
  EXPECT_EQ(fleet.completed(), static_cast<std::int64_t>(items.size()));

  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& out = outcomes[i];
    // Outcomes arrive in item order regardless of completion order.
    EXPECT_EQ(out.item.scenario, items[i].scenario);
    EXPECT_EQ(out.item.seed, items[i].seed);
    EXPECT_TRUE(out.ok) << out.item.scenario->name << " seed " << out.item.seed << " n "
                        << out.item.n << ": " << out.detail;
    // The acceptance bar: bit-identical to serial one-at-a-time execution
    // (cold buffers, no fleet, no scratch).
    const auto serial = items[i].scenario->run_at(items[i].seed, items[i].n, items[i].t, {});
    EXPECT_EQ(scenarios::fingerprint(serial.report), out.fingerprint)
        << items[i].scenario->name << " seed " << items[i].seed << " n " << items[i].n;
    // And the full report shipped through the handle matches its digest.
    EXPECT_EQ(scenarios::fingerprint(out.report), out.fingerprint);
  }
}

TEST(FleetSweep, SameItemsSameFingerprintsAcrossFleetShapes) {
  // The same batch through different worker counts and scratch settings
  // yields identical per-instance fingerprints.
  static const std::vector<NodeId> kSizes = {48};
  std::vector<std::uint64_t> seeds = {3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<SweepItem> items;
  for (const char* name : {"crash_staggered_drip", "byz_silent_little"}) {
    auto expanded = scenarios::sweep(name, seeds, kSizes);
    items.insert(items.end(), expanded.begin(), expanded.end());
  }

  std::vector<std::uint64_t> reference;
  for (const FleetConfig config : {FleetConfig{1, false}, FleetConfig{2, true},
                                   FleetConfig{8, true}}) {
    FleetRunner fleet(config);
    const auto outcomes = scenarios::run_sweep(fleet, items);
    std::vector<std::uint64_t> prints;
    for (const auto& out : outcomes) prints.push_back(out.fingerprint);
    if (reference.empty()) {
      reference = prints;
    } else {
      EXPECT_EQ(reference, prints)
          << "threads=" << config.threads << " reuse=" << config.reuse_scratch;
    }
  }
}

// ---- sweep expansion -------------------------------------------------------

TEST(Sweep, ExpandsSeedBySizeGrid) {
  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  const std::vector<NodeId> sizes = {48, 96};
  const auto items = scenarios::sweep("crash_staggered_drip", seeds, sizes);
  ASSERT_EQ(items.size(), 6u);
  const auto* scenario = scenarios::find_scenario("crash_staggered_drip");
  for (const auto& item : items) {
    EXPECT_EQ(item.scenario, scenario);
    EXPECT_EQ(item.t, scenario->scaled_t(item.n));
  }
  EXPECT_EQ(items[0].seed, 1u);
  EXPECT_EQ(items[0].n, 48);
  EXPECT_EQ(items[1].n, 96);
  EXPECT_EQ(items[2].seed, 2u);
}

TEST(Sweep, DefaultSizeWhenSizesEmpty) {
  const std::vector<std::uint64_t> seeds = {7};
  const auto items = scenarios::sweep("omission_send_quorum", seeds);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].n, items[0].scenario->n);
  EXPECT_EQ(items[0].t, items[0].scenario->t);
}

TEST(Sweep, ScaledBudgetKeepsRatioAndFloors) {
  const auto* s = scenarios::find_scenario("crash_burst_flood");  // 600 / 100
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->scaled_t(600), 100);
  EXPECT_EQ(s->scaled_t(300), 50);
  EXPECT_EQ(s->scaled_t(6), 1);
  EXPECT_EQ(s->scaled_t(1), 1);  // floored, never 0 faults
}

}  // namespace
}  // namespace lft
