// Compile-and-run smoke test of the umbrella header: the whole public API is
// reachable through a single include, and a minimal instance of every
// problem family solves correctly.
#include "lft.hpp"

#include <gtest/gtest.h>

namespace {

using namespace lft;

TEST(PublicApi, EveryProblemFamilySolvesAMinimalInstance) {
  const NodeId n = 60;
  const std::int64_t t = 5;
  std::vector<int> inputs(static_cast<std::size_t>(n), 0);
  inputs[1] = 1;

  // Crash consensus.
  const auto consensus = core::run_few_crashes_consensus(
      core::ConsensusParams::practical(n, t), inputs,
      sim::make_scheduled(sim::burst_crash_schedule(n, t, 0, 1)));
  EXPECT_TRUE(consensus.all_good());

  // Gossip.
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n), 3);
  const auto gossip = core::run_gossip(core::GossipParams::practical(n, t), rumors, nullptr);
  EXPECT_TRUE(gossip.all_good());

  // Checkpointing.
  const auto checkpoint =
      core::run_checkpointing(core::CheckpointParams::practical(n, t), nullptr);
  EXPECT_TRUE(checkpoint.all_good());

  // Counting + majority.
  const auto majority = core::run_majority_consensus(
      core::CheckpointParams::practical(n, t), inputs, nullptr);
  EXPECT_TRUE(majority.all_good());
  EXPECT_EQ(majority.members, static_cast<std::int64_t>(n));
  EXPECT_EQ(majority.ones, 1);

  // Authenticated Byzantine consensus.
  std::vector<std::uint64_t> byz_inputs(static_cast<std::size_t>(n), 1);
  const auto ab = byzantine::run_ab_consensus(byzantine::AbParams::practical(n, t),
                                              byz_inputs, {{1, "silent"}});
  EXPECT_TRUE(ab.termination && ab.agreement);

  // Single-port consensus.
  const auto sp = singleport::run_linear_consensus(
      core::ConsensusParams::single_port(n, t), inputs, nullptr);
  EXPECT_TRUE(sp.all_good());

  // A baseline for comparison.
  const auto baseline = baselines::run_floodset(n, t, inputs, nullptr);
  EXPECT_TRUE(baseline.all_good());

  // The fault plane's declarative layer: a mixed plan through the same
  // public entry point.
  sim::FaultPlan plan;
  plan.burst_crashes(n, t - 1, 1, 99).split_at(n / 2, n, 2, 4);
  const auto faulted = core::run_few_crashes_consensus(
      core::ConsensusParams::practical(n, t), inputs,
      sim::make_plan_injector(std::move(plan)));
  EXPECT_TRUE(faulted.all_good());
}

TEST(PublicApi, ScenarioRegistryReachable) {
  EXPECT_GE(scenarios::all_scenarios().size(), 12u);
  const auto* scenario = scenarios::find_scenario("crash_staggered_drip");
  ASSERT_NE(scenario, nullptr);
  const auto result = scenario->run(/*seed=*/2, /*threads=*/1);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(PublicApi, GraphToolingReachable) {
  const auto g = graph::make_overlay(128, 8, 1);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_LT(graph::second_eigenvalue_estimate(g), 8.0);
  EXPECT_FALSE(graph::lps_catalog(3000).empty());
}

}  // namespace
