// Failure-injection tests: crash bursts aimed at each protocol stage
// boundary, per-seed randomized sweeps, targeted isolation attacks, and the
// "one crash per round" stagger — the adversarial coverage beyond the main
// protocol test grids.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/checkpointing.hpp"
#include "core/consensus.hpp"
#include "core/gossip.hpp"
#include "graph/overlay.hpp"
#include "core/stages.hpp"
#include "sim/adversary.hpp"
#include "test_util.hpp"

namespace lft::core {
namespace {

std::vector<int> random_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));
  return inputs;
}

// ---- crash bursts aimed at each stage window -------------------------------------

struct WindowCase {
  const char* stage;
  double frac;  // position of the burst within the protocol schedule [0, 1]
};

class StageWindowSweep : public ::testing::TestWithParam<WindowCase> {};

TEST_P(StageWindowSweep, FewCrashesSurvivesBurstInEveryStage) {
  const auto& c = GetParam();
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  // Schedule length: flood (5t-1) + probe (gamma+2) + notify 2 + spread + phases.
  const Round total = params.flood_rounds_little + params.probe_gamma_little + 3 +
                      params.spread_rounds + 2 * params.scv_phases + 4;
  const Round when = static_cast<Round>(c.frac * static_cast<double>(total));
  const auto inputs = random_inputs(n, 71);
  const auto outcome = run_few_crashes_consensus(
      params, inputs, sim::make_scheduled(sim::burst_crash_schedule(n, t, when, 73)));
  EXPECT_TRUE(outcome.termination) << c.stage;
  EXPECT_TRUE(outcome.agreement) << c.stage;
  EXPECT_TRUE(outcome.validity) << c.stage;
}

INSTANTIATE_TEST_SUITE_P(Windows, StageWindowSweep,
                         ::testing::Values(WindowCase{"flood_start", 0.0},
                                           WindowCase{"flood_mid", 0.4},
                                           WindowCase{"probe", 0.88},
                                           WindowCase{"notify", 0.93},
                                           WindowCase{"spread", 0.96},
                                           WindowCase{"inquiry", 0.99}),
                         [](const auto& info) { return info.param.stage; });

TEST(StageWindow, CheckpointingSurvivesBurstAtGossipConsensusBoundary) {
  const NodeId n = 150;
  const std::int64_t t = 20;
  const auto params = CheckpointParams::practical(n, t);
  // Gossip occupies 2 * phases * (gamma + 3) + 3 rounds; burst right there.
  const Round boundary =
      2 * params.gossip.phases * (params.gossip.probe_gamma + 3) + 3;
  const auto outcome = run_checkpointing(
      params, sim::make_scheduled(sim::burst_crash_schedule(n, t, boundary, 79)));
  EXPECT_TRUE(outcome.all_good());
}

TEST(StageWindow, GossipSurvivesBurstBetweenParts) {
  const NodeId n = 150;
  const std::int64_t t = 20;
  const auto params = GossipParams::practical(n, t);
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n), 1);
  const Round part1 = params.phases * (params.probe_gamma + 3);
  const auto outcome = run_gossip(
      params, rumors, sim::make_scheduled(sim::burst_crash_schedule(n, t, part1, 83)));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.condition1);
  EXPECT_TRUE(outcome.condition2);
}

// ---- randomized seed sweeps ---------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, FewCrashesAcrossSeeds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const NodeId n = 120;
  const std::int64_t t = 20;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, seed);
  const auto outcome = run_few_crashes_consensus(
      params, inputs,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 5 * t, 0.5, seed * 31 + 7)));
  EXPECT_TRUE(outcome.all_good()) << "seed " << seed;
  EXPECT_EQ(outcome.report.metrics.fallback_pulls, 0) << "seed " << seed;
}

TEST_P(SeedSweep, ManyCrashesAcrossSeeds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const NodeId n = 96;
  const std::int64_t t = 60;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, seed + 100);
  const auto outcome = run_many_crashes_consensus(
      params, inputs,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, n / 2, 0.3, seed * 37 + 11)));
  EXPECT_TRUE(outcome.all_good()) << "seed " << seed;
}

TEST_P(SeedSweep, GossipAcrossSeeds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const NodeId n = 110;
  const std::int64_t t = 14;
  const auto params = GossipParams::practical(n, t);
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) rumors[static_cast<std::size_t>(v)] = seed * 1000 + v;
  const auto outcome = run_gossip(
      params, rumors,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 4 * t, 0.0, seed * 41 + 13)));
  EXPECT_TRUE(outcome.all_good()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 11),
                         [](const auto& info) { return test::case_name("seed", info.param); });

// ---- targeted isolation --------------------------------------------------------------

TEST(Isolation, LittleNodeCutFromProbeOverlayStillDecides) {
  // Crash every little-overlay neighbor of little node 1: it cannot survive
  // probing, but the SCV inquiry phases run on *different* graphs, so it
  // still learns the decision — phase-graph diversity is load-bearing.
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  const auto little_g = graph::shared_overlay(
      params.little_count, std::min<int>(params.probe_degree_little, params.little_count - 1),
      params.overlay_tag ^ kOverlayLittleG);
  auto schedule = sim::isolation_crash_schedule(*little_g, 1, t);
  ASSERT_LE(static_cast<std::int64_t>(schedule.size()), t);
  const auto inputs = random_inputs(n, 3);
  const auto outcome =
      run_few_crashes_consensus(params, inputs, sim::make_scheduled(std::move(schedule)));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
  EXPECT_FALSE(outcome.report.nodes[1].crashed);
  EXPECT_TRUE(outcome.report.nodes[1].decided) << "isolated little node must still decide";
}

TEST(Isolation, SpreadOverlayCutVictimRecoversThroughInquiries) {
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  const auto h = graph::shared_overlay(n, params.spread_degree,
                                       params.overlay_tag ^ kOverlaySpreadH);
  const NodeId victim = n - 1;
  auto schedule = sim::isolation_crash_schedule(*h, victim, t);
  const auto inputs = random_inputs(n, 5);
  const auto outcome =
      run_few_crashes_consensus(params, inputs, sim::make_scheduled(std::move(schedule)));
  EXPECT_TRUE(outcome.all_good());
  EXPECT_TRUE(outcome.report.nodes[static_cast<std::size_t>(victim)].decided);
}

// ---- stagger: one crash per round ------------------------------------------------------

TEST(Stagger, OneCrashPerRoundThroughTheWholeExecution) {
  // The paper's efficiency framing: one crash delays termination by O(1)
  // rounds. Our schedules are fixed-length, so the stronger check is that a
  // crash in *every* round of the critical window never breaks safety.
  const NodeId n = 160;
  const std::int64_t t = 31;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 7);
  const auto outcome = run_few_crashes_consensus(
      params, inputs,
      sim::make_scheduled(sim::staggered_crash_schedule(n, t, 0, 5, 17)));
  EXPECT_TRUE(outcome.all_good());
}

TEST(Stagger, RoundsIndependentOfCrashCount) {
  // Deterministic schedules: the round count is a function of (n, t), not of
  // how many crashes actually happen (early-stopping is out of scope, as in
  // the paper's algorithms).
  const NodeId n = 120;
  const std::int64_t t = 20;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 9);
  const auto quiet = run_few_crashes_consensus(params, inputs, nullptr);
  const auto noisy = run_few_crashes_consensus(
      params, inputs, sim::make_scheduled(sim::burst_crash_schedule(n, t, 0, 21)));
  EXPECT_TRUE(quiet.all_good());
  EXPECT_TRUE(noisy.all_good());
  EXPECT_EQ(quiet.report.rounds, noisy.report.rounds);
}

// ---- partial-send torture ---------------------------------------------------------------

TEST(PartialSend, EveryCrashKeepsHalfItsMessages) {
  const NodeId n = 150;
  const std::int64_t t = 25;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 11);
  const auto outcome = run_few_crashes_consensus(
      params, inputs,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 5 * t, 0.5, 23)));
  EXPECT_TRUE(outcome.all_good());
}

TEST(PartialSend, CheckpointingWithPartialCrashes) {
  const auto params = CheckpointParams::practical(120, 15);
  const auto outcome = run_checkpointing(
      params, sim::make_scheduled(sim::random_crash_schedule(120, 15, 0, 80, 0.7, 29)));
  EXPECT_TRUE(outcome.all_good());
}

}  // namespace
}  // namespace lft::core
