// Failure-injection tests: crash bursts aimed at each protocol stage
// boundary, per-seed randomized sweeps, targeted isolation attacks, the
// "one crash per round" stagger, and the unified fault plane's regimes —
// omission quorums, partition heal/re-merge, Byzantine takeover determinism,
// and cross-thread bit-identity under active fault plans.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "byzantine/ab_consensus.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/checkpointing.hpp"
#include "core/consensus.hpp"
#include "core/gossip.hpp"
#include "graph/overlay.hpp"
#include "core/stages.hpp"
#include "forensics/trace.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/adversary.hpp"
#include "sim/faults.hpp"
#include "test_util.hpp"

namespace lft::core {
namespace {

std::vector<int> random_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));
  return inputs;
}

// ---- crash bursts aimed at each stage window -------------------------------------

struct WindowCase {
  const char* stage;
  double frac;  // position of the burst within the protocol schedule [0, 1]
};

class StageWindowSweep : public ::testing::TestWithParam<WindowCase> {};

TEST_P(StageWindowSweep, FewCrashesSurvivesBurstInEveryStage) {
  const auto& c = GetParam();
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  // Schedule length: flood (5t-1) + probe (gamma+2) + notify 2 + spread + phases.
  const Round total = params.flood_rounds_little + params.probe_gamma_little + 3 +
                      params.spread_rounds + 2 * params.scv_phases + 4;
  const Round when = static_cast<Round>(c.frac * static_cast<double>(total));
  const auto inputs = random_inputs(n, 71);
  const auto outcome = run_few_crashes_consensus(
      params, inputs, sim::make_scheduled(sim::burst_crash_schedule(n, t, when, 73)));
  EXPECT_TRUE(outcome.termination) << c.stage;
  EXPECT_TRUE(outcome.agreement) << c.stage;
  EXPECT_TRUE(outcome.validity) << c.stage;
}

INSTANTIATE_TEST_SUITE_P(Windows, StageWindowSweep,
                         ::testing::Values(WindowCase{"flood_start", 0.0},
                                           WindowCase{"flood_mid", 0.4},
                                           WindowCase{"probe", 0.88},
                                           WindowCase{"notify", 0.93},
                                           WindowCase{"spread", 0.96},
                                           WindowCase{"inquiry", 0.99}),
                         [](const auto& info) { return info.param.stage; });

TEST(StageWindow, CheckpointingSurvivesBurstAtGossipConsensusBoundary) {
  const NodeId n = 150;
  const std::int64_t t = 20;
  const auto params = CheckpointParams::practical(n, t);
  // Gossip occupies 2 * phases * (gamma + 3) + 3 rounds; burst right there.
  const Round boundary =
      2 * params.gossip.phases * (params.gossip.probe_gamma + 3) + 3;
  const auto outcome = run_checkpointing(
      params, sim::make_scheduled(sim::burst_crash_schedule(n, t, boundary, 79)));
  EXPECT_TRUE(outcome.all_good());
}

TEST(StageWindow, GossipSurvivesBurstBetweenParts) {
  const NodeId n = 150;
  const std::int64_t t = 20;
  const auto params = GossipParams::practical(n, t);
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n), 1);
  const Round part1 = params.phases * (params.probe_gamma + 3);
  const auto outcome = run_gossip(
      params, rumors, sim::make_scheduled(sim::burst_crash_schedule(n, t, part1, 83)));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.condition1);
  EXPECT_TRUE(outcome.condition2);
}

// ---- randomized seed sweeps ---------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, FewCrashesAcrossSeeds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const NodeId n = 120;
  const std::int64_t t = 20;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, seed);
  const auto outcome = run_few_crashes_consensus(
      params, inputs,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 5 * t, 0.5, seed * 31 + 7)));
  EXPECT_TRUE(outcome.all_good()) << "seed " << seed;
  EXPECT_EQ(outcome.report.metrics.fallback_pulls, 0) << "seed " << seed;
}

TEST_P(SeedSweep, ManyCrashesAcrossSeeds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const NodeId n = 96;
  const std::int64_t t = 60;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, seed + 100);
  const auto outcome = run_many_crashes_consensus(
      params, inputs,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, n / 2, 0.3, seed * 37 + 11)));
  EXPECT_TRUE(outcome.all_good()) << "seed " << seed;
}

TEST_P(SeedSweep, GossipAcrossSeeds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const NodeId n = 110;
  const std::int64_t t = 14;
  const auto params = GossipParams::practical(n, t);
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) rumors[static_cast<std::size_t>(v)] = seed * 1000 + v;
  const auto outcome = run_gossip(
      params, rumors,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 4 * t, 0.0, seed * 41 + 13)));
  EXPECT_TRUE(outcome.all_good()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 11),
                         [](const auto& info) { return test::case_name("seed", info.param); });

// ---- targeted isolation --------------------------------------------------------------

TEST(Isolation, LittleNodeCutFromProbeOverlayStillDecides) {
  // Crash every little-overlay neighbor of little node 1: it cannot survive
  // probing, but the SCV inquiry phases run on *different* graphs, so it
  // still learns the decision — phase-graph diversity is load-bearing.
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  const auto little_g = graph::shared_overlay(
      params.little_count, std::min<int>(params.probe_degree_little, params.little_count - 1),
      params.overlay_tag ^ kOverlayLittleG);
  auto schedule = sim::isolation_crash_schedule(*little_g, 1, t);
  ASSERT_LE(static_cast<std::int64_t>(schedule.size()), t);
  const auto inputs = random_inputs(n, 3);
  const auto outcome =
      run_few_crashes_consensus(params, inputs, sim::make_scheduled(std::move(schedule)));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
  EXPECT_FALSE(outcome.report.nodes[1].crashed);
  EXPECT_TRUE(outcome.report.nodes[1].decided) << "isolated little node must still decide";
}

TEST(Isolation, SpreadOverlayCutVictimRecoversThroughInquiries) {
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  const auto h = graph::shared_overlay(n, params.spread_degree,
                                       params.overlay_tag ^ kOverlaySpreadH);
  const NodeId victim = n - 1;
  auto schedule = sim::isolation_crash_schedule(*h, victim, t);
  const auto inputs = random_inputs(n, 5);
  const auto outcome =
      run_few_crashes_consensus(params, inputs, sim::make_scheduled(std::move(schedule)));
  EXPECT_TRUE(outcome.all_good());
  EXPECT_TRUE(outcome.report.nodes[static_cast<std::size_t>(victim)].decided);
}

// ---- stagger: one crash per round ------------------------------------------------------

TEST(Stagger, OneCrashPerRoundThroughTheWholeExecution) {
  // The paper's efficiency framing: one crash delays termination by O(1)
  // rounds. Our schedules are fixed-length, so the stronger check is that a
  // crash in *every* round of the critical window never breaks safety.
  const NodeId n = 160;
  const std::int64_t t = 31;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 7);
  const auto outcome = run_few_crashes_consensus(
      params, inputs,
      sim::make_scheduled(sim::staggered_crash_schedule(n, t, 0, 5, 17)));
  EXPECT_TRUE(outcome.all_good());
}

TEST(Stagger, RoundsIndependentOfCrashCount) {
  // Deterministic schedules: the round count is a function of (n, t), not of
  // how many crashes actually happen (early-stopping is out of scope, as in
  // the paper's algorithms).
  const NodeId n = 120;
  const std::int64_t t = 20;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 9);
  const auto quiet = run_few_crashes_consensus(params, inputs, nullptr);
  const auto noisy = run_few_crashes_consensus(
      params, inputs, sim::make_scheduled(sim::burst_crash_schedule(n, t, 0, 21)));
  EXPECT_TRUE(quiet.all_good());
  EXPECT_TRUE(noisy.all_good());
  EXPECT_EQ(quiet.report.rounds, noisy.report.rounds);
}

// ---- partial-send torture ---------------------------------------------------------------

TEST(PartialSend, EveryCrashKeepsHalfItsMessages) {
  const NodeId n = 150;
  const std::int64_t t = 25;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 11);
  const auto outcome = run_few_crashes_consensus(
      params, inputs,
      sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 5 * t, 0.5, 23)));
  EXPECT_TRUE(outcome.all_good());
}

TEST(PartialSend, CheckpointingWithPartialCrashes) {
  const auto params = CheckpointParams::practical(120, 15);
  const auto outcome = run_checkpointing(
      params, sim::make_scheduled(sim::random_crash_schedule(120, 15, 0, 80, 0.7, 29)));
  EXPECT_TRUE(outcome.all_good());
}

// ---- unified fault plane: engine-level semantics ---------------------------------------

/// Applies a scripted list of controller actions in the pre-round phase.
class ScriptedInjector final : public sim::FaultInjector {
 public:
  using Script = std::function<void(const sim::EngineView&, sim::FaultController&)>;
  explicit ScriptedInjector(Script script) : script_(std::move(script)) {}
  void pre_round(const sim::EngineView& view, sim::FaultController& control) override {
    script_(view, control);
  }

 private:
  Script script_;
};

/// 3-node fixture: node 0 sends tag 1 to nodes 1 and 2 every round until
/// `rounds`; nodes 1 and 2 count what they receive.
struct FanoutCounts {
  sim::Report report;
  int received_at_1 = 0;
  int received_at_2 = 0;
};

FanoutCounts run_fanout(Round rounds, ScriptedInjector::Script script,
                        sim::EngineConfig config = {}) {
  FanoutCounts out;
  sim::Engine engine(3, config);
  engine.set_process(0, test::lambda_process([rounds](sim::Context& ctx, const sim::Inbox&) {
                       if (ctx.round() >= rounds) {
                         ctx.halt();
                         return;
                       }
                       ctx.send(1, 1, ctx.round());
                       ctx.send(2, 1, ctx.round());
                     }));
  auto listener = [rounds](int& counter) {
    return test::lambda_process(
        [rounds, &counter](sim::Context& ctx, const sim::Inbox& inbox) {
          counter += static_cast<int>(inbox.size());
          if (ctx.round() > rounds) ctx.halt();
        });
  };
  engine.set_process(1, listener(out.received_at_1));
  engine.set_process(2, listener(out.received_at_2));
  engine.add_fault_injector(std::make_unique<ScriptedInjector>(std::move(script)));
  out.report = engine.run();
  return out;
}

TEST(FaultPlane, SendOmissionWindowDropsInTransitButStillAccounts) {
  sim::EngineConfig config;
  config.omission_budget = 1;
  // Node 0 is send-omission faulty during rounds [2, 4): those sends are
  // charged to the metrics (the sender did the work) but never delivered.
  const auto out = run_fanout(
      6,
      [](const sim::EngineView& view, sim::FaultController& control) {
        if (view.round() == 2) control.set_send_omission(0, true);
        if (view.round() == 4) control.set_send_omission(0, false);
      },
      config);
  EXPECT_EQ(out.received_at_1, 4);  // 6 send rounds minus 2 omitted
  EXPECT_EQ(out.received_at_2, 4);
  EXPECT_EQ(out.report.metrics.messages_total, 12);  // all sends accounted
  EXPECT_TRUE(out.report.nodes[0].omission);
  EXPECT_FALSE(out.report.nodes[1].omission);
}

TEST(FaultPlane, RecvOmissionIsPerReceiver) {
  sim::EngineConfig config;
  config.omission_budget = 1;
  const auto out = run_fanout(
      4,
      [](const sim::EngineView& view, sim::FaultController& control) {
        if (view.round() == 0) control.set_recv_omission(1, true);
      },
      config);
  EXPECT_EQ(out.received_at_1, 0);  // deaf from round 0 on
  EXPECT_EQ(out.received_at_2, 4);  // unaffected
}

TEST(FaultPlane, LinkCutIsDirectedAndHealable) {
  const auto out = run_fanout(6, [](const sim::EngineView& view,
                                    sim::FaultController& control) {
    if (view.round() == 1) control.cut_link(0, 1);
    if (view.round() == 3) control.heal_link(0, 1);
  });
  EXPECT_EQ(out.received_at_1, 4);  // rounds 1 and 2 lost on the cut link
  EXPECT_EQ(out.received_at_2, 6);  // the 0 -> 2 link never dropped
}

TEST(FaultPlane, PartitionDropsCrossGroupTrafficUntilHealed) {
  const auto out = run_fanout(6, [](const sim::EngineView& view,
                                    sim::FaultController& control) {
    if (view.round() == 0) {
      // {0, 2} vs {1}: node 1 is split off.
      const std::uint32_t groups[3] = {0, 1, 0};
      control.set_partition(groups);
    }
    if (view.round() == 3) control.clear_partition();
  });
  EXPECT_EQ(out.received_at_1, 3);  // rounds 0-2 crossed the partition
  EXPECT_EQ(out.received_at_2, 6);  // same-group traffic unaffected
}

TEST(FaultPlane, TakeoverSwapsBehaviorAndExcludesFromHonestCounters) {
  sim::EngineConfig config;
  config.byzantine_budget = 1;
  sim::Engine engine(2, config);
  std::vector<std::uint64_t> values_at_1;
  engine.set_process(0, test::lambda_process([](sim::Context& ctx, const sim::Inbox&) {
                       if (ctx.round() >= 6) {
                         ctx.halt();
                         return;
                       }
                       ctx.send(1, 1, /*value=*/7);
                     }));
  engine.set_process(1, test::lambda_process(
                            [&values_at_1](sim::Context& ctx, const sim::Inbox& inbox) {
                              for (const auto& m : inbox) values_at_1.push_back(m.value);
                              if (ctx.round() > 6) ctx.halt();
                            }));
  engine.add_fault_injector(std::make_unique<ScriptedInjector>(
      [](const sim::EngineView& view, sim::FaultController& control) {
        if (view.round() == 3) {
          control.takeover(0, test::lambda_process([](sim::Context& ctx, const sim::Inbox&) {
                             if (ctx.round() >= 6) {
                               ctx.halt();
                               return;
                             }
                             ctx.send(1, 1, /*value=*/9);
                           }));
        }
      }));
  const auto report = engine.run();
  // Rounds 0-2 honest (7), rounds 3-5 Byzantine (9): the swap is effective
  // the round the takeover fires.
  EXPECT_EQ(values_at_1, (std::vector<std::uint64_t>{7, 7, 7, 9, 9, 9}));
  EXPECT_TRUE(report.nodes[0].byzantine);
  EXPECT_EQ(report.metrics.messages_total, 6);
  // Honest counters only cover the pre-takeover sends.
  EXPECT_EQ(report.metrics.messages_honest, 3);
}

TEST(FaultPlane, OverlappingPlanWindowsCompose) {
  // Two overlapping send-omission windows on node 0 ([1, 3) and [2, 5)): the
  // flag must stay up until the *last* window closes, and an inner partition
  // window healing must restore the enclosing partition, not clear it.
  sim::EngineConfig config;
  config.omission_budget = 1;
  sim::Engine engine(3, config);
  int received_at_1 = 0;
  engine.set_process(0, test::lambda_process([](sim::Context& ctx, const sim::Inbox&) {
                       if (ctx.round() >= 8) {
                         ctx.halt();
                         return;
                       }
                       ctx.send(1, 1, ctx.round());
                     }));
  engine.set_process(1, test::lambda_process(
                            [&received_at_1](sim::Context& ctx, const sim::Inbox& inbox) {
                              received_at_1 += static_cast<int>(inbox.size());
                              if (ctx.round() > 8) ctx.halt();
                            }));
  engine.set_process(2, test::idle_process());
  sim::FaultPlan plan;
  plan.omission(0, 1, 3, /*send=*/true, /*recv=*/false);
  plan.omission(0, 2, 5, /*send=*/true, /*recv=*/false);
  engine.add_fault_injector(sim::make_plan_injector(std::move(plan)));
  const auto report = engine.run();
  // Rounds 1-4 omitted (the union of the windows), rounds 0 and 5-7 land.
  EXPECT_EQ(received_at_1, 4);
  EXPECT_TRUE(report.completed);
}

TEST(FaultPlane, NestedPartitionHealRestoresEnclosingSplit) {
  const auto out = run_fanout(10, [](const sim::EngineView&, sim::FaultController&) {});
  EXPECT_EQ(out.received_at_1, 10);  // baseline: nothing dropped

  sim::Engine engine(3, {});
  int received_at_1 = 0;
  engine.set_process(0, test::lambda_process([](sim::Context& ctx, const sim::Inbox&) {
                       if (ctx.round() >= 10) {
                         ctx.halt();
                         return;
                       }
                       ctx.send(1, 1, ctx.round());
                     }));
  engine.set_process(1, test::lambda_process(
                            [&received_at_1](sim::Context& ctx, const sim::Inbox& inbox) {
                              received_at_1 += static_cast<int>(inbox.size());
                              if (ctx.round() > 10) ctx.halt();
                            }));
  engine.set_process(2, test::idle_process());
  sim::FaultPlan plan;
  // Outer split isolates node 1 for [0, 8); an inner split of node 2 spans
  // [2, 4). When the inner window heals at round 4 the outer split must come
  // back into force for rounds [4, 8).
  plan.split(std::vector<std::uint32_t>{0, 1, 0}, 0, 8);
  plan.split(std::vector<std::uint32_t>{0, 1, 2}, 2, 4);
  engine.add_fault_injector(sim::make_plan_injector(std::move(plan)));
  const auto report = engine.run();
  EXPECT_EQ(received_at_1, 2);  // only rounds 8 and 9 cross
  EXPECT_TRUE(report.completed);
}

TEST(FaultPlane, OmissionOnHaltedNodeIsFreeNoOp) {
  // Like crashing a halted node, an omission fault aimed at a node that
  // already halted is disregarded: budget 0 must not abort and the node must
  // not be marked faulty (its decisions were made while non-faulty).
  sim::Engine engine(3, {});  // omission_budget = 0
  engine.set_process(0, test::lambda_process([](sim::Context& ctx, const sim::Inbox&) {
                       ctx.halt();  // halts before the window opens
                     }));
  engine.set_process(1, test::lambda_process([](sim::Context& ctx, const sim::Inbox&) {
                       if (ctx.round() >= 5) ctx.halt();
                     }));
  engine.set_process(2, test::idle_process());
  sim::FaultPlan plan;
  plan.omission(0, 3, 5, /*send=*/true, /*recv=*/true);
  engine.add_fault_injector(sim::make_plan_injector(std::move(plan)));
  const auto report = engine.run();
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.nodes[0].omission);
}

TEST(Omission, GossipPermanentRecvOmissionExemptsFaultyHolders) {
  // Permanent receive omission: the deaf nodes' own extant sets carry no
  // guarantee (holder-side exemption), but every non-faulty node must still
  // satisfy all gossip conditions.
  const NodeId n = 110;
  const std::int64_t t = 14;
  const auto params = GossipParams::practical(n, t);
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n), 9);
  sim::FaultPlan plan;
  plan.random_omissions(n, t, 0, sim::kRoundForever, /*send=*/false, /*recv=*/true, 89);
  const auto outcome = run_gossip(params, rumors, sim::make_plan_injector(std::move(plan)));
  EXPECT_TRUE(outcome.all_good());
}

TEST(FaultPlane, OmissionBudgetChargedOncePerNode) {
  sim::EngineConfig config;
  config.omission_budget = 1;  // one faulty node; toggling must not re-charge
  std::int64_t observed_used = -1;
  const auto out = run_fanout(
      6,
      [&observed_used](const sim::EngineView& view, sim::FaultController& control) {
        if (view.round() == 0) control.set_send_omission(0, true);
        if (view.round() == 1) control.set_send_omission(0, false);
        if (view.round() == 2) control.set_recv_omission(0, true);
        if (view.round() == 3) control.set_recv_omission(0, false);
        observed_used = view.omissions_used();
      },
      config);
  EXPECT_EQ(observed_used, 1);
  EXPECT_TRUE(out.report.nodes[0].omission);
}

// ---- omission quorums on the paper's protocols -----------------------------------------

TEST(Omission, SendOmissionQuorumStillReachesFullConsensus) {
  // t send-omission faulty nodes look crashed to everyone else but keep
  // receiving — empirically even the faulty nodes decide the common value
  // (stronger than the crash-model theorem, which would exempt them).
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 41);
  sim::FaultPlan plan;
  plan.random_omissions(n, t, 0, sim::kRoundForever, /*send=*/true, /*recv=*/false, 43);
  const auto outcome = run_few_crashes_consensus(params, inputs,
                                                 sim::make_plan_injector(std::move(plan)));
  EXPECT_TRUE(outcome.all_good());
  EXPECT_EQ(outcome.report.decided_count(), n);
}

TEST(Omission, RecvOmissionBlackoutKeepsSafetyAndNonFaultyTermination) {
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 47);
  sim::FaultPlan plan;
  plan.random_omissions(n, t, 0, sim::kRoundForever, /*send=*/false, /*recv=*/true, 53);
  const auto outcome = run_few_crashes_consensus(params, inputs,
                                                 sim::make_plan_injector(std::move(plan)));
  // Omission-faulty nodes are exempt from termination (they may never hear
  // the decision), but agreement and validity must hold for everyone who
  // decided, and all non-faulty nodes must decide.
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
}

TEST(Omission, GossipWithOmissionWindowKeepsConditions) {
  const NodeId n = 110;
  const std::int64_t t = 14;
  const auto params = GossipParams::practical(n, t);
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n), 5);
  const Round part1 = params.phases * (params.probe_gamma + 3);
  sim::FaultPlan plan;
  plan.random_omissions(n, t, 0, part1, /*send=*/true, /*recv=*/true, 59);
  const auto outcome = run_gossip(params, rumors, sim::make_plan_injector(std::move(plan)));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.condition1);
  EXPECT_TRUE(outcome.condition2);
  EXPECT_TRUE(outcome.rumors_intact);
}

// ---- partition heal / re-merge ---------------------------------------------------------

TEST(Partition, SplitDuringFloodHealsToFullGuarantees) {
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 61);
  sim::FaultPlan plan;
  plan.split_at(n - n / 8, n, 1, 9);  // an eighth split off, then re-merged
  const auto outcome = run_few_crashes_consensus(params, inputs,
                                                 sim::make_plan_injector(std::move(plan)));
  EXPECT_TRUE(outcome.all_good());
  EXPECT_EQ(outcome.report.decided_count(), n);  // the re-merged eighth catches up
}

TEST(Partition, RepeatedSplitHealCycles) {
  // Three short split/heal cycles on different boundaries: healing must
  // fully re-merge state each time.
  const NodeId n = 200;
  const std::int64_t t = 30;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 67);
  sim::FaultPlan plan;
  plan.split_at(n / 2, n, 2, 5);
  plan.split_at(n / 4, n, 7, 10);
  plan.split_at(3 * n / 4, n, 12, 15);
  const auto outcome = run_few_crashes_consensus(params, inputs,
                                                 sim::make_plan_injector(std::move(plan)));
  EXPECT_TRUE(outcome.all_good());
}

// ---- Byzantine takeover determinism & cross-thread bit-identity ------------------------

TEST(Takeover, MidrunTakeoverIsDeterministicAcrossRunsAndThreads) {
  const auto params = byzantine::AbParams::practical(120, 11);
  std::vector<std::uint64_t> inputs(120, 0);
  for (std::size_t v = 0; v < inputs.size(); v += 3) inputs[v] = 1;
  auto run_once = [&](int threads) {
    sim::FaultPlan plan;
    for (std::int64_t i = 0; i < 11; ++i) {
      plan.takeover(static_cast<NodeId>(i * 2 % params.little_count), 3, "silent");
    }
    core::RunOptions options;
    options.threads = threads;
    return byzantine::run_ab_consensus_plan(params, inputs, std::move(plan), options);
  };
  const auto a = run_once(1);
  const auto b = run_once(1);
  const auto c = run_once(4);
  EXPECT_TRUE(a.termination);
  EXPECT_TRUE(a.agreement);
  EXPECT_EQ(scenarios::fingerprint(a.report), scenarios::fingerprint(b.report));
  EXPECT_EQ(scenarios::fingerprint(a.report), scenarios::fingerprint(c.report));
}

TEST(Takeover, AbConsensusExemptsOmissionFaultyFromTermination) {
  // Receive-omission nodes may never hear the certified set; like the other
  // runners, AB-Consensus must exempt them from termination and the max rule
  // rather than report a spurious failure.
  const auto params = byzantine::AbParams::practical(120, 11);
  std::vector<std::uint64_t> inputs(120, 0);
  inputs[2] = 1;
  sim::FaultPlan plan;
  plan.random_omissions(120, 11, 0, sim::kRoundForever, /*send=*/false, /*recv=*/true, 83);
  const auto outcome = byzantine::run_ab_consensus_plan(params, inputs, std::move(plan));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
}

TEST(FaultPlaneThreads, MixedPlanReportBitIdenticalAcrossThreadCounts) {
  // n >= 256 so the parallel stepper's worker pool actually engages; the
  // plan exercises every fault class the crash-model protocol admits.
  const NodeId n = 600;
  const std::int64_t t = 90;
  const auto params = ConsensusParams::practical(n, t);
  const auto inputs = random_inputs(n, 71);
  auto run_once = [&](int threads) {
    sim::FaultPlan plan;
    plan.burst_crashes(n / 2, t / 3, 2, 73);
    plan.random_omissions(n / 2, t / 3, 0, 40, /*send=*/true, /*recv=*/true, 79);
    plan.split_at(n - n / 10, n, 4, 10);
    plan.cut_link(0, 1, 0, 30);
    auto factory = [&](NodeId v) {
      return make_few_crashes_process(params, v, inputs[static_cast<std::size_t>(v)]);
    };
    core::RunOptions options;
    options.threads = threads;
    return run_system(n, t, factory, sim::make_plan_injector(std::move(plan)), options);
  };
  const auto serial = run_once(1);
  const auto parallel = run_once(4);
  EXPECT_EQ(scenarios::fingerprint(serial), scenarios::fingerprint(parallel));
  EXPECT_EQ(serial.metrics.messages_total, parallel.metrics.messages_total);
  EXPECT_EQ(serial.metrics.messages_honest, parallel.metrics.messages_honest);
  ASSERT_EQ(serial.nodes.size(), parallel.nodes.size());
  for (std::size_t v = 0; v < serial.nodes.size(); ++v) {
    EXPECT_EQ(serial.nodes[v].decided, parallel.nodes[v].decided) << v;
    EXPECT_EQ(serial.nodes[v].decision, parallel.nodes[v].decision) << v;
    EXPECT_EQ(serial.nodes[v].omission, parallel.nodes[v].omission) << v;
  }
  const auto outcome = evaluate_consensus(serial, inputs);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
}

// ---- timing faults: message conservation + the zero-lag noop ---------------------------

/// Traced n=300 workload under `plan` (large enough to engage the parallel
/// stepper): every node fans out two messages per round for six rounds;
/// every fifth node halts at round 3, so messages parked for it past that
/// point must resolve as lost_dead, while everyone else stays up well past
/// the longest lag so their parked messages resolve as delivered.
forensics::Trace traced_delay_fanout(sim::FaultPlan plan, int threads,
                                     sim::EngineScratch* scratch = nullptr) {
  const NodeId n = 300;
  forensics::TraceRecorder recorder;
  sim::EngineConfig config;
  config.threads = threads;
  config.scratch = scratch;
  config.trace = &recorder;
  sim::Engine engine(n, config);
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, test::lambda_process([n](sim::Context& ctx, const sim::Inbox&) {
                         const Round halt_at = ctx.self() % 5 == 0 ? 3 : 16;
                         if (ctx.round() >= halt_at) {
                           ctx.halt();
                           return;
                         }
                         if (ctx.round() >= 6) return;
                         for (int i = 0; i < 2; ++i) {
                           const auto to =
                               static_cast<NodeId>((ctx.self() * 7 + i * 3 + 1) % n);
                           ctx.send(to, static_cast<std::uint32_t>(i),
                                    static_cast<std::uint64_t>(ctx.round()));
                         }
                       }));
  }
  engine.add_fault_injector(sim::make_plan_injector(std::move(plan)));
  const sim::Report report = engine.run();
  forensics::Trace trace = recorder.take();
  trace.report_fingerprint = scenarios::fingerprint(report);
  return trace;
}

TEST(TimingFaults, DelayedMessagesConserveAcrossSteppersAndScratch) {
  // Conservation: a delayed message is held, never lost — each parked
  // message resolves to delivered or lost_dead at its due round, so over a
  // whole trace the send total equals the fate total exactly (the `delayed`
  // column nets out). This must hold identically at 1, 2, and 4 threads and
  // under scratch adoption.
  auto make_plan = [] {
    sim::FaultPlan plan;
    plan.delay_all(0, sim::kRoundForever, 1, 3);
    return plan;
  };
  sim::EngineScratch scratch;
  const forensics::Trace reference = traced_delay_fanout(make_plan(), 1);
  const forensics::Trace runs[] = {
      traced_delay_fanout(make_plan(), 2),
      traced_delay_fanout(make_plan(), 4),
      traced_delay_fanout(make_plan(), 1, &scratch),
      traced_delay_fanout(make_plan(), 4, &scratch),  // recycled buffers
  };
  std::uint64_t sent = 0, fated = 0, parked = 0, dead = 0;
  for (const auto& d : reference.rounds) {
    sent += d.sent;
    fated += d.delivered + d.lost_crash + d.lost_fault + d.lost_dead;
    parked += d.delayed;
    dead += d.lost_dead;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_GT(parked, 0u) << "the plan parked nothing — dead test";
  EXPECT_GT(dead, 0u) << "no parked message outlived its receiver — weak test";
  EXPECT_EQ(sent, fated);
  for (const auto& run : runs) {
    EXPECT_EQ(run.report_fingerprint, reference.report_fingerprint);
    ASSERT_EQ(run.rounds.size(), reference.rounds.size());
    for (std::size_t r = 0; r < run.rounds.size(); ++r) {
      EXPECT_TRUE(run.rounds[r] == reference.rounds[r]) << "round " << r;
    }
  }
}

TEST(TimingFaults, ZeroLagRuleIsBitIdenticalToNoRule) {
  // A [0, 0] delay rule arms the delay plane (disabling the synchronous
  // fast path) but every coin comes up lag 0, so nothing is ever parked and
  // the execution must match the unarmed run bit for bit — same fingerprint,
  // same digests. The only permitted difference is the `delays` action
  // counter recording the rule install.
  sim::FaultPlan armed;
  armed.delay_all(0, sim::kRoundForever, 0, 0);
  const forensics::Trace with_rule = traced_delay_fanout(std::move(armed), 1);
  const forensics::Trace without = traced_delay_fanout(sim::FaultPlan{}, 1);
  EXPECT_EQ(with_rule.report_fingerprint, without.report_fingerprint);
  ASSERT_EQ(with_rule.rounds.size(), without.rounds.size());
  for (std::size_t r = 0; r < with_rule.rounds.size(); ++r) {
    sim::RoundDigest a = with_rule.rounds[r];
    sim::RoundDigest b = without.rounds[r];
    EXPECT_EQ(a.delayed, 0u) << "round " << r << ": a zero-lag rule parked a message";
    a.delays = 0;
    b.delays = 0;
    EXPECT_TRUE(a == b) << "round " << r;
  }
}

}  // namespace
}  // namespace lft::core
