// Tests for the Section 9 extensions: counting and majority consensus built
// from gossip + 2n-instance vectorized consensus.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/extensions.hpp"
#include "sim/adversary.hpp"
#include "test_util.hpp"

namespace lft::core {
namespace {

std::vector<int> inputs_with_ones(NodeId n, NodeId ones, std::uint64_t seed) {
  std::vector<int> inputs(static_cast<std::size_t>(n), 0);
  Rng rng(seed);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(std::span<NodeId>(perm));
  for (NodeId i = 0; i < ones; ++i) inputs[static_cast<std::size_t>(perm[i])] = 1;
  return inputs;
}

TEST(MajorityConsensus, ExactCountsWithoutCrashes) {
  const NodeId n = 120;
  const auto params = CheckpointParams::practical(n, 10);
  const auto inputs = inputs_with_ones(n, 45, 3);
  const auto outcome = run_majority_consensus(params, inputs, nullptr);
  EXPECT_TRUE(outcome.all_good());
  EXPECT_EQ(outcome.members, 120);
  EXPECT_EQ(outcome.ones, 45);
  EXPECT_EQ(outcome.majority, 0);  // 45 * 2 < 120
}

TEST(MajorityConsensus, MajorityOneWhenOnesDominate) {
  const NodeId n = 100;
  const auto params = CheckpointParams::practical(n, 8);
  const auto inputs = inputs_with_ones(n, 70, 5);
  const auto outcome = run_majority_consensus(params, inputs, nullptr);
  EXPECT_TRUE(outcome.all_good());
  EXPECT_EQ(outcome.majority, 1);
}

struct AggCase {
  NodeId n;
  std::int64_t t;
  NodeId ones;
  std::string adversary;
};

class MajoritySweep : public ::testing::TestWithParam<AggCase> {};

TEST_P(MajoritySweep, AgreementAndSaneCountsUnderCrashes) {
  const auto& c = GetParam();
  const auto params = CheckpointParams::practical(c.n, c.t);
  const auto inputs = inputs_with_ones(c.n, c.ones, 7);
  std::unique_ptr<sim::FaultInjector> adversary;
  if (c.adversary == "burst0") {
    adversary = sim::make_scheduled(sim::burst_crash_schedule(c.n, c.t, 0, 9));
  } else if (c.adversary == "random") {
    adversary =
        sim::make_scheduled(sim::random_crash_schedule(c.n, c.t, 0, 4 * c.t + 20, 0.0, 9));
  }
  const auto outcome = run_majority_consensus(params, inputs, std::move(adversary));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement) << "nodes derived different aggregates";
  // The agreed member set includes all non-crashed nodes and at most n.
  const std::int64_t survivors =
      static_cast<std::int64_t>(c.n) - outcome.report.crashed_count();
  EXPECT_GE(outcome.members, survivors);
  EXPECT_LE(outcome.members, static_cast<std::int64_t>(c.n));
  // The agreed ones-count can't exceed the proposers of 1 nor the members.
  EXPECT_LE(outcome.ones, static_cast<std::int64_t>(c.ones));
  EXPECT_LE(outcome.ones, outcome.members);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MajoritySweep,
    ::testing::Values(AggCase{60, 4, 40, "none"}, AggCase{60, 4, 40, "burst0"},
                      AggCase{100, 12, 30, "random"}, AggCase{100, 12, 80, "burst0"},
                      AggCase{200, 30, 110, "random"}, AggCase{64, 0, 32, "none"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_ones", c.ones, "_", c.adversary);
    });

TEST(MajorityConsensus, DeterministicAcrossRuns) {
  const auto params = CheckpointParams::practical(80, 8);
  const auto inputs = inputs_with_ones(80, 50, 11);
  auto adv = [&] {
    return sim::make_scheduled(sim::random_crash_schedule(80, 8, 0, 40, 0.0, 13));
  };
  const auto a = run_majority_consensus(params, inputs, adv());
  const auto b = run_majority_consensus(params, inputs, adv());
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.ones, b.ones);
  EXPECT_EQ(a.report.metrics.messages_total, b.report.metrics.messages_total);
}

}  // namespace
}  // namespace lft::core
