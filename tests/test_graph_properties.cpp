// Tests for the paper's Section 2-3 machinery: survival subsets (Theorem 2's
// fixed-point operator), dense neighborhoods (Proposition 1 / Theorem 3),
// expansion (Theorems 1 and 4), and the quantitative behaviour of these
// properties on genuine Ramanujan (LPS), Margulis and certified
// random-regular overlays — the per-instance validation that justifies
// DESIGN.md substitution 1.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "graph/families.hpp"
#include "graph/lps.hpp"
#include "graph/margulis.hpp"
#include "graph/overlay.hpp"
#include "graph/properties.hpp"
#include "graph/spectral.hpp"

namespace lft::graph {
namespace {

DynamicBitset full_set(NodeId n) {
  DynamicBitset b(static_cast<std::size_t>(n));
  b.set_all();
  return b;
}

DynamicBitset random_subset(NodeId n, NodeId keep, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(std::span<NodeId>(perm));
  DynamicBitset b(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < keep; ++i) b.set(static_cast<std::size_t>(perm[i]));
  return b;
}

// ---- survival subsets (delta-core) --------------------------------------------

TEST(SurvivalSubset, CompleteGraphKeepsEverything) {
  const Graph g = complete_graph(20);
  const auto core = survival_subset(g, full_set(20), 10);
  EXPECT_EQ(core.count(), 20u);
}

TEST(SurvivalSubset, PathPeelsEntirelyForDelta2) {
  // A path has endpoints of degree 1; delta=2 peeling cascades end to end.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < 10; ++v) edges.emplace_back(v, v + 1);
  const Graph g = Graph::from_edges(10, edges);
  const auto core = survival_subset(g, full_set(10), 2);
  EXPECT_EQ(core.count(), 0u);
}

TEST(SurvivalSubset, RingSurvivesDelta2) {
  const Graph g = ring_graph(12);
  const auto core = survival_subset(g, full_set(12), 2);
  EXPECT_EQ(core.count(), 12u);
}

TEST(SurvivalSubset, RestrictsToGivenSet) {
  const Graph g = ring_graph(12);
  DynamicBitset b = full_set(12);
  b.set(0, false);  // break the ring: remaining path peels away at delta=2
  const auto core = survival_subset(g, b, 2);
  EXPECT_EQ(core.count(), 0u);
  EXPECT_TRUE(core.is_subset_of(b));
}

TEST(SurvivalSubset, CoreMembersHaveDeltaDegreesInCore) {
  const Graph g = make_overlay(400, 12, 21);
  const auto b = random_subset(400, 320, 5);
  const int delta = 4;
  const auto core = survival_subset(g, b, delta);
  EXPECT_TRUE(core.is_subset_of(b));
  core.for_each([&](std::size_t v) {
    int deg = 0;
    for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
      if (core.test(static_cast<std::size_t>(w))) ++deg;
    }
    EXPECT_GE(deg, delta);
  });
}

// Theorem 2's quantitative claim, practical-parameter edition: on a certified
// expander, removing up to 20% of vertices leaves a delta-core covering at
// least 3/4 of the survivors (the paper's (ell, 3/4, delta)-compactness).
TEST(SurvivalSubset, CompactnessOnCertifiedExpander) {
  const NodeId n = 600;
  const int d = 16;
  const Graph g = make_overlay(n, d, 33);
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto b = random_subset(n, n - n / 5, seed);
    const auto core = survival_subset(g, b, d / 4);
    EXPECT_GE(core.count() * 4, b.count() * 3)
        << "seed " << seed << ": core " << core.count() << " of " << b.count();
  }
}

TEST(SurvivalSubset, CompactnessOnLps) {
  const auto catalog = lps_catalog(2000);
  ASSERT_FALSE(catalog.empty());
  const auto res = lps_graph(catalog.front().p, catalog.front().q);
  const NodeId n = res.graph.num_vertices();
  const auto b = random_subset(n, n - n / 5, 9);
  const auto core = survival_subset(res.graph, b, res.degree / 4);
  EXPECT_GE(core.count() * 4, b.count() * 3);
}

// ---- dense neighborhoods -------------------------------------------------------

TEST(DenseNeighborhood, CompleteGraphIsDense) {
  const Graph g = complete_graph(16);
  EXPECT_TRUE(has_dense_neighborhood(g, 0, 2, 10, full_set(16)));
  EXPECT_FALSE(has_dense_neighborhood(g, 0, 2, 16, full_set(16)));  // delta > degree
}

TEST(DenseNeighborhood, DeadVertexHasNone) {
  const Graph g = complete_graph(16);
  DynamicBitset alive = full_set(16);
  alive.set(0, false);
  EXPECT_FALSE(has_dense_neighborhood(g, 0, 2, 3, alive));
}

TEST(DenseNeighborhood, SizeGrowsWithRadius) {
  // Theorem 3's doubling: on an expander the dense neighborhood of radius
  // 2 + lg n reaches a constant fraction of vertices.
  const NodeId n = 512;
  const Graph g = make_overlay(n, 16, 8);
  const int gamma = 2 + 9;  // 2 + lg 512
  const auto size = dense_neighborhood_size(g, 0, gamma, 4, full_set(n));
  EXPECT_GE(size, static_cast<std::size_t>(n) / 2);
  const auto small = dense_neighborhood_size(g, 0, 1, 4, full_set(n));
  EXPECT_LT(small, size);
}

TEST(DenseNeighborhood, SurvivesModerateCrashes) {
  const NodeId n = 512;
  const Graph g = make_overlay(n, 16, 8);
  const auto alive = random_subset(n, n - n / 5, 4);
  const int gamma = 2 + 9;
  std::size_t with = 0, total = 0;
  alive.for_each([&](std::size_t v) {
    ++total;
    if (has_dense_neighborhood(g, static_cast<NodeId>(v), gamma, 4, alive)) ++with;
  });
  EXPECT_GE(with * 4, total * 3);  // at least 3/4 of survivors are dense
}

// ---- neighborhood balls ----------------------------------------------------------

TEST(NeighborhoodBall, RadiusZeroIsSeed) {
  const Graph g = ring_graph(10);
  const auto ball = neighborhood_ball(g, 3, 0, full_set(10));
  EXPECT_EQ(ball.count(), 1u);
  EXPECT_TRUE(ball.test(3));
}

TEST(NeighborhoodBall, RingBallGrowsLinearly) {
  const Graph g = ring_graph(20);
  EXPECT_EQ(neighborhood_ball(g, 0, 1, full_set(20)).count(), 3u);
  EXPECT_EQ(neighborhood_ball(g, 0, 3, full_set(20)).count(), 7u);
}

TEST(NeighborhoodBall, RespectsAliveMask) {
  const Graph g = ring_graph(10);
  DynamicBitset alive = full_set(10);
  alive.set(1, false);  // block clockwise direction
  const auto ball = neighborhood_ball(g, 0, 3, alive);
  EXPECT_TRUE(ball.test(9));
  EXPECT_TRUE(ball.test(7));
  EXPECT_FALSE(ball.test(1));
  EXPECT_FALSE(ball.test(2));
}

// ---- edge counting -----------------------------------------------------------------

TEST(EdgeCounts, BetweenVolumeBoundary) {
  const Graph g = complete_graph(6);
  DynamicBitset a(6), b(6);
  a.set(0);
  a.set(1);
  b.set(2);
  b.set(3);
  EXPECT_EQ(edges_between(g, a, b), 4);
  EXPECT_EQ(volume(g, a), 1);
  EXPECT_EQ(edge_boundary(g, a), 8);  // 2 vertices x 4 outside neighbors
  EXPECT_EQ(external_neighbor_count(g, a), 4);
}

TEST(EdgeCounts, HandshakeConsistency) {
  const Graph g = make_overlay(200, 8, 77);
  const auto s = random_subset(200, 80, 3);
  // vol(S) counted via degrees: sum deg_S(v) = 2 vol(S).
  std::int64_t twice = 0;
  s.for_each([&](std::size_t v) {
    for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
      if (s.test(static_cast<std::size_t>(w))) ++twice;
    }
  });
  EXPECT_EQ(twice, 2 * volume(g, s));
  // Total degree of S = 2 vol(S) + boundary.
  std::int64_t total_deg = 0;
  s.for_each([&](std::size_t v) { total_deg += g.degree(static_cast<NodeId>(v)); });
  EXPECT_EQ(total_deg, 2 * volume(g, s) + edge_boundary(g, s));
}

// ---- components ---------------------------------------------------------------------

TEST(Components, SplitRing) {
  const Graph g = ring_graph(10);
  DynamicBitset alive = full_set(10);
  alive.set(0, false);
  alive.set(5, false);
  const auto labels = connected_components(g, alive);
  EXPECT_EQ(labels[0], -1);
  EXPECT_EQ(labels[5], -1);
  EXPECT_EQ(labels[1], labels[4]);
  EXPECT_EQ(labels[6], labels[9]);
  EXPECT_NE(labels[1], labels[6]);
}

TEST(Components, IsConnectedHelpers) {
  EXPECT_TRUE(is_connected(ring_graph(5)));
  const Graph two = Graph::from_edges(4, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {2, 3}});
  EXPECT_FALSE(is_connected(two));
}

// ---- expansion (Theorems 1 and 4) ----------------------------------------------------

TEST(Expansion, LpsIsEllExpanding) {
  // Theorem 1: X^{p,q} is ell(n,d)-expanding with ell = 4 n d^{-1/8}. At
  // LPS-feasible degrees that formula exceeds n, so we check the operative
  // statement: two disjoint linear-size sets are always joined by an edge.
  const auto catalog = lps_catalog(2000);
  ASSERT_FALSE(catalog.empty());
  const auto res = lps_graph(catalog.front().p, catalog.front().q);
  const NodeId n = res.graph.num_vertices();
  EXPECT_TRUE(sampled_ell_expansion(res.graph, n / 6, 50, 11));
}

TEST(Expansion, RingIsNotExpanding) {
  const Graph g = ring_graph(200);
  EXPECT_FALSE(sampled_ell_expansion(g, 20, 50, 11));
}

TEST(Expansion, Theorem4CrossEdges) {
  // Theorem 4: for |A| = eps*n and |B| > 4n/(d*eps), disjoint A and B are
  // joined by an edge. At d = 16 the bound is non-vacuous only for eps
  // close to 1/2 (|B| > n/2), so test at the boundary: A of size n/2 and B
  // covering (almost) the rest.
  const NodeId n = 800;
  const Graph g = make_overlay(n, 16, 55);
  Rng rng(13);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  const NodeId a_size = n / 2;
  const NodeId b_size = n / 2 - 4;
  for (int trial = 0; trial < 20; ++trial) {
    rng.shuffle(std::span<NodeId>(perm));
    DynamicBitset a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < a_size; ++i) a.set(static_cast<std::size_t>(perm[i]));
    for (NodeId i = 0; i < b_size; ++i) {
      b.set(static_cast<std::size_t>(perm[a_size + i]));
    }
    EXPECT_GT(edges_between(g, a, b), 0);
  }
}

TEST(Expansion, SpectralExpansionMatchesCheegerBound) {
  const Graph g = margulis_graph(18);
  const double h_lower = edge_expansion_lower_bound(g);
  // Sample a few balanced cuts and confirm none violates the bound.
  Rng rng(3);
  const NodeId n = g.num_vertices();
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(std::span<NodeId>(perm));
    DynamicBitset s(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n / 2; ++i) s.set(static_cast<std::size_t>(perm[i]));
    const double ratio =
        static_cast<double>(edge_boundary(g, s)) / static_cast<double>(s.count());
    EXPECT_GE(ratio, h_lower - 1e-9);
  }
}

}  // namespace
}  // namespace lft::graph
