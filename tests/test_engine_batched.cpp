// Tests for the batched event-driven engine: bitwise determinism of Metrics
// across reruns, message conservation under the crash adversary, the
// (receiver, tag) delivery normal form exposed by Inbox, and the
// sleep_until/wake-on-message activation contract.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/consensus.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace lft::sim {
namespace {

using test::LambdaProcess;
using test::lambda_process;

// ---- determinism ---------------------------------------------------------------

void expect_metrics_equal(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.bits_total, b.bits_total);
  EXPECT_EQ(a.messages_honest, b.messages_honest);
  EXPECT_EQ(a.bits_honest, b.bits_honest);
  EXPECT_EQ(a.max_sends_per_node, b.max_sends_per_node);
  EXPECT_EQ(a.fallback_pulls, b.fallback_pulls);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.peak_round_messages, b.peak_round_messages);
}

TEST(BatchedEngine, SameSeedGivesIdenticalMetrics) {
  const NodeId n = 128;
  const std::int64_t t = 20;
  const auto params = core::ConsensusParams::practical(n, t);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) inputs[static_cast<std::size_t>(v)] = (v * 5 + 1) % 2;

  auto adversary = [&] {
    return make_scheduled(random_crash_schedule(n, t, 0, 4 * t, 0.5, 91));
  };
  const auto a = core::run_few_crashes_consensus(params, inputs, adversary());
  const auto b = core::run_few_crashes_consensus(params, inputs, adversary());

  ASSERT_TRUE(a.termination);
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  EXPECT_EQ(a.decision, b.decision);
  expect_metrics_equal(a.report.metrics, b.report.metrics);
  ASSERT_EQ(a.report.nodes.size(), b.report.nodes.size());
  for (std::size_t v = 0; v < a.report.nodes.size(); ++v) {
    EXPECT_EQ(a.report.nodes[v].crashed, b.report.nodes[v].crashed);
    EXPECT_EQ(a.report.nodes[v].decided, b.report.nodes[v].decided);
    EXPECT_EQ(a.report.nodes[v].decision, b.report.nodes[v].decision);
    EXPECT_EQ(a.report.nodes[v].sends, b.report.nodes[v].sends);
  }
}

TEST(BatchedEngine, MetricsRoundsMirrorsReport) {
  Engine engine(2, {});
  for (NodeId v = 0; v < 2; ++v) {
    engine.set_process(v, lambda_process([](Context& ctx, const Inbox&) {
                         if (ctx.round() >= 3) ctx.halt();
                       }));
  }
  const Report report = engine.run();
  EXPECT_EQ(report.metrics.rounds, report.rounds);
}

// ---- message conservation ------------------------------------------------------

TEST(BatchedEngine, MessageConservationUnderCrashFaults) {
  // Every node sends 3 messages per round for 20 rounds while the adversary
  // crashes t nodes (half of them partially). Every accounted message must
  // trace back to a sender send-count, and nothing can be received that was
  // not accounted.
  const NodeId n = 50;
  const std::int64_t t = 12;
  EngineConfig config;
  config.crash_budget = t;
  Engine engine(n, config);
  std::int64_t received_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, lambda_process([&received_total, n](Context& ctx, const Inbox& inbox) {
                         received_total += static_cast<std::int64_t>(inbox.size());
                         if (ctx.round() >= 20) {
                           ctx.halt();
                           return;
                         }
                         for (int i = 1; i <= 3; ++i) {
                           const auto to = static_cast<NodeId>(
                               (ctx.self() + i * 7 + ctx.round()) % n);
                           if (to != ctx.self()) ctx.send(to, 0, 1);
                         }
                       }));
  }
  engine.add_fault_injector(make_scheduled(random_crash_schedule(n, t, 1, 15, 0.5, 7)));
  const Report report = engine.run();

  std::int64_t sends_sum = 0;
  for (const auto& s : report.nodes) sends_sum += s.sends;
  EXPECT_EQ(report.metrics.messages_total, sends_sum);
  EXPECT_EQ(report.metrics.messages_honest, report.metrics.messages_total);
  EXPECT_LE(received_total, report.metrics.messages_total);
  EXPECT_GT(received_total, 0);
  EXPECT_EQ(report.crashed_count(), t);
  EXPECT_LE(report.metrics.peak_round_messages, 3 * static_cast<std::int64_t>(n));
}

TEST(BatchedEngine, ConservationIsExactWithoutFaults) {
  const NodeId n = 20;
  Engine engine(n, {});
  std::int64_t received_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, lambda_process([&received_total, n](Context& ctx, const Inbox& inbox) {
                         received_total += static_cast<std::int64_t>(inbox.size());
                         if (ctx.round() == 0) {
                           ctx.send((ctx.self() + 1) % n, 0, 1);
                           ctx.send((ctx.self() + 2) % n, 1, 1);
                         }
                         if (ctx.round() >= 1) ctx.halt();
                       }));
  }
  const Report report = engine.run();
  EXPECT_EQ(report.metrics.messages_total, 2 * static_cast<std::int64_t>(n));
  EXPECT_EQ(received_total, report.metrics.messages_total);
}

// ---- delivery normal form ------------------------------------------------------

TEST(BatchedEngine, InboxGroupsByTagThenSender) {
  Engine engine(4, {});
  std::vector<std::pair<std::uint32_t, NodeId>> order;
  for (NodeId v = 1; v < 4; ++v) {
    engine.set_process(v, lambda_process([](Context& ctx, const Inbox&) {
                         if (ctx.round() == 0) {
                           // Higher tag sent first: delivery must regroup.
                           ctx.send(0, 9, 1);
                           ctx.send(0, 2, 1);
                         }
                         ctx.halt();
                       }));
  }
  engine.set_process(0, lambda_process([&order](Context& ctx, const Inbox& inbox) {
                       for (const auto& m : inbox) order.emplace_back(m.tag, m.from);
                       const auto low = inbox.with_tag(2);
                       const auto high = inbox.with_tag(9);
                       const auto none = inbox.with_tag(5);
                       if (ctx.round() == 1) {
                         EXPECT_EQ(low.size(), 3u);
                         EXPECT_EQ(high.size(), 3u);
                         EXPECT_TRUE(none.empty());
                       }
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  engine.run();
  const std::vector<std::pair<std::uint32_t, NodeId>> expected{
      {2, 1}, {2, 2}, {2, 3}, {9, 1}, {9, 2}, {9, 3}};
  EXPECT_EQ(order, expected);
}

// ---- sleep/wake ----------------------------------------------------------------

TEST(BatchedEngine, SleepingNodeSkipsRounds) {
  Engine engine(2, {});
  std::vector<Round> activations;
  engine.set_process(0, lambda_process([&activations](Context& ctx, const Inbox&) {
                       activations.push_back(ctx.round());
                       if (ctx.round() == 0) {
                         ctx.sleep_until(5);
                         return;
                       }
                       ctx.halt();
                     }));
  engine.set_process(1, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() >= 6) ctx.halt();
                     }));
  const Report report = engine.run();
  EXPECT_EQ(activations, (std::vector<Round>{0, 5}));
  EXPECT_TRUE(report.completed);
}

TEST(BatchedEngine, MessageWakesSleeperEarly) {
  Engine engine(2, {});
  std::vector<Round> activations;
  engine.set_process(0, lambda_process([&activations](Context& ctx, const Inbox& inbox) {
                       activations.push_back(ctx.round());
                       if (ctx.round() == 0) {
                         ctx.sleep_until(100);
                         return;
                       }
                       EXPECT_EQ(inbox.size(), 1u);
                       ctx.halt();
                     }));
  engine.set_process(1, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() == 2) ctx.send(0, 0, 1);
                       if (ctx.round() >= 2) ctx.halt();
                     }));
  const Report report = engine.run();
  // The message sent at round 2 is readable at round 3; the sleeper must be
  // activated exactly then, not at its round-100 timer.
  EXPECT_EQ(activations, (std::vector<Round>{0, 3}));
  EXPECT_TRUE(report.completed);
  EXPECT_LT(report.rounds, 100);
}

TEST(BatchedEngine, SleepingNodeCanBeCrashed) {
  EngineConfig config;
  config.crash_budget = 1;
  Engine engine(2, config);
  int activations = 0;
  engine.set_process(0, lambda_process([&activations](Context& ctx, const Inbox&) {
                       ++activations;
                       ctx.sleep_until(50);
                     }));
  engine.set_process(1, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() >= 3) ctx.halt();
                     }));
  engine.add_fault_injector(make_scheduled({CrashEvent{2, 0, 0.0}}));
  const Report report = engine.run();
  EXPECT_EQ(activations, 1);
  EXPECT_TRUE(report.nodes[0].crashed);
  EXPECT_EQ(report.nodes[0].crash_round, 2);
  // The engine must not wait for the dead sleeper's round-50 timer.
  EXPECT_TRUE(report.completed);
  EXPECT_LT(report.rounds, 50);
}

TEST(BatchedEngine, AllAsleepStillTicksAdversarySchedule) {
  // Both nodes sleep through the adversary's crash round; the crash must
  // still happen at its scheduled round.
  EngineConfig config;
  config.crash_budget = 1;
  Engine engine(2, config);
  for (NodeId v = 0; v < 2; ++v) {
    engine.set_process(v, lambda_process([](Context& ctx, const Inbox&) {
                         if (ctx.round() == 0) {
                           ctx.sleep_until(10);
                           return;
                         }
                         ctx.halt();
                       }));
  }
  engine.add_fault_injector(make_scheduled({CrashEvent{4, 1, 0.0}}));
  const Report report = engine.run();
  EXPECT_TRUE(report.nodes[1].crashed);
  EXPECT_EQ(report.nodes[1].crash_round, 4);
  EXPECT_FALSE(report.nodes[0].crashed);
  EXPECT_TRUE(report.completed);
}

}  // namespace
}  // namespace lft::sim
