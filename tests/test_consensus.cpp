// Protocol tests for the crash-model algorithms (Sections 4.1-4.4):
// Almost-Everywhere-Agreement, Spread-Common-Value, Few-Crashes-Consensus
// and Many-Crashes-Consensus. Parameterized sweeps check the consensus
// invariants (agreement, validity, termination) across sizes, input
// patterns, and adversary strategies, plus the performance shapes the
// theorems claim (round counts, message counts, zero fallback activations).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/consensus.hpp"
#include "core/params.hpp"
#include "sim/adversary.hpp"
#include "test_util.hpp"

namespace lft::core {
namespace {

using sim::FaultInjector;

std::vector<int> make_inputs(NodeId n, const std::string& pattern, std::uint64_t seed) {
  std::vector<int> inputs(static_cast<std::size_t>(n), 0);
  if (pattern == "all0") return inputs;
  if (pattern == "all1") {
    std::fill(inputs.begin(), inputs.end(), 1);
  } else if (pattern == "half") {
    for (NodeId v = 0; v < n; v += 2) inputs[static_cast<std::size_t>(v)] = 1;
  } else if (pattern == "one1") {
    inputs[static_cast<std::size_t>(n / 2)] = 1;
  } else if (pattern == "random") {
    Rng rng(seed);
    for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));
  }
  return inputs;
}

std::unique_ptr<FaultInjector> make_adversary(const std::string& kind, NodeId n,
                                               std::int64_t t, std::uint64_t seed) {
  if (kind == "none" || t == 0) return nullptr;
  if (kind == "burst0") return sim::make_scheduled(sim::burst_crash_schedule(n, t, 0, seed));
  if (kind == "random") {
    return sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 5 * t + 10, 0.0, seed));
  }
  if (kind == "partial") {
    return sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 5 * t + 10, 0.5, seed));
  }
  if (kind == "staggered") {
    return sim::make_scheduled(sim::staggered_crash_schedule(n, t, 1, 3, seed));
  }
  if (kind == "disruptor") {
    return std::make_unique<sim::ProbeDisruptorAdversary>(t, 1, 0);
  }
  ADD_FAILURE() << "unknown adversary kind " << kind;
  return nullptr;
}

// ---- AEA (Theorem 5) ----------------------------------------------------------

struct AeaCase {
  NodeId n;
  std::int64_t t;
  std::string pattern;
  std::string adversary;
};

class AeaSweep : public ::testing::TestWithParam<AeaCase> {};

TEST_P(AeaSweep, ThreeFifthsDecideWithAgreementAndValidity) {
  const auto& c = GetParam();
  const auto params = ConsensusParams::practical(c.n, c.t);
  const auto inputs = make_inputs(c.n, c.pattern, 11);
  const auto outcome =
      run_aea(params, inputs, make_adversary(c.adversary, c.n, c.t, 77));
  EXPECT_TRUE(outcome.report.completed);
  EXPECT_GE(outcome.decided_or_crashed * 5, static_cast<std::int64_t>(c.n) * 3)
      << "fewer than 3/5 n decided-or-crashed";
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AeaSweep,
    ::testing::Values(AeaCase{100, 10, "random", "none"}, AeaCase{100, 10, "all0", "burst0"},
                      AeaCase{100, 10, "all1", "burst0"}, AeaCase{100, 10, "half", "random"},
                      AeaCase{250, 30, "random", "random"},
                      AeaCase{250, 30, "one1", "staggered"},
                      AeaCase{250, 30, "random", "partial"},
                      AeaCase{512, 64, "random", "disruptor"}, AeaCase{60, 2, "half", "random"},
                      AeaCase{50, 0, "random", "none"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.pattern, "_", c.adversary);
    });

TEST(Aea, RoundsLinearInT) {
  // Theorem 5: O(t) rounds. Our schedule is (5t-1) + (gamma+1) + 2 rounds.
  for (std::int64_t t : {5, 10, 20, 40}) {
    const NodeId n = static_cast<NodeId>(8 * t);
    const auto params = ConsensusParams::practical(n, t);
    const auto inputs = make_inputs(n, "random", 3);
    const auto outcome = run_aea(params, inputs, nullptr);
    const Round expected =
        params.flood_rounds_little + (params.probe_gamma_little + 1) + 2;
    EXPECT_EQ(outcome.report.rounds, expected) << "t=" << t;
    EXPECT_LE(outcome.report.rounds, 6 * t + 20);
  }
}

TEST(Aea, MessageBoundNPlusTLogT) {
  // Theorem 5's accounting: O(1) messages per little node in Part 1,
  // O(log t) per little node in Part 2 (probing), n in Part 3 — so the
  // total is O(n + t log t), which is O(n) in the optimality range.
  for (NodeId n : {200, 400, 800}) {
    const std::int64_t t = n / 10;
    const auto params = ConsensusParams::practical(n, t);
    const auto inputs = make_inputs(n, "random", 9);
    const auto outcome = run_aea(params, inputs, nullptr);
    const std::int64_t bound =
        2 * (static_cast<std::int64_t>(n) +
             static_cast<std::int64_t>(params.little_count) * params.probe_degree_little *
                 (params.probe_gamma_little + 1));
    EXPECT_LE(outcome.report.metrics.messages_total, bound) << "n=" << n;
    EXPECT_EQ(outcome.report.metrics.bits_total, outcome.report.metrics.messages_total)
        << "AEA messages must carry exactly one bit";
  }
}

TEST(Aea, MessagesLinearInNWithinOptimalityRange) {
  // Table 1 row 2: total O(n) when t = O(n / log n).
  for (NodeId n : {512, 1024, 2048}) {
    const std::int64_t t =
        std::max<std::int64_t>(1, n / (8 * ceil_log2(static_cast<std::uint64_t>(n))));
    const auto params = ConsensusParams::practical(n, t);
    const auto inputs = make_inputs(n, "random", 9);
    const auto outcome = run_aea(params, inputs, nullptr);
    EXPECT_LE(outcome.report.metrics.messages_total, 40 * static_cast<std::int64_t>(n))
        << "n=" << n << " t=" << t;
  }
}

// ---- SCV (Theorem 6) -------------------------------------------------------------

struct ScvCase {
  NodeId n;
  std::int64_t t;
  std::string adversary;
};

class ScvSweep : public ::testing::TestWithParam<ScvCase> {};

TEST_P(ScvSweep, EveryNonFaultyNodeLearnsTheCommonValue) {
  const auto& c = GetParam();
  const auto params = ConsensusParams::practical(c.n, c.t);
  // Initialize exactly ceil(3/5 n) nodes (spread around) with value 7.
  std::vector<std::optional<std::uint64_t>> initials(static_cast<std::size_t>(c.n));
  Rng rng(41);
  std::vector<NodeId> perm(static_cast<std::size_t>(c.n));
  for (NodeId v = 0; v < c.n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(std::span<NodeId>(perm));
  const NodeId seeded = static_cast<NodeId>((3 * c.n + 4) / 5);
  for (NodeId i = 0; i < seeded; ++i) {
    initials[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = 7;
  }
  const auto outcome =
      run_scv(params, initials, make_adversary(c.adversary, c.n, c.t, 17));
  EXPECT_TRUE(outcome.all_decided_common);
  EXPECT_EQ(outcome.report.metrics.fallback_pulls, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Branches, ScvSweep,
    ::testing::Values(ScvCase{200, 5, "none"},      // t^2 <= n: all-littles pull
                      ScvCase{200, 5, "burst0"},    //
                      ScvCase{200, 14, "random"},   // t^2 <= n boundary
                      ScvCase{300, 30, "none"},     // t^2 > n: inquiry phases
                      ScvCase{300, 30, "burst0"},   //
                      ScvCase{300, 55, "random"},   //
                      ScvCase{512, 100, "partial"}, //
                      ScvCase{512, 100, "disruptor"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.adversary);
    });

TEST(Scv, RoundsLogarithmicInT) {
  // Theorem 6: O(log t) rounds.
  for (std::int64_t t : {16, 64, 256}) {
    const NodeId n = static_cast<NodeId>(6 * t);
    const auto params = ConsensusParams::practical(n, t);
    std::vector<std::optional<std::uint64_t>> initials(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < (3 * n + 4) / 5; ++v) initials[static_cast<std::size_t>(v)] = 1;
    const auto outcome = run_scv(params, initials, nullptr);
    EXPECT_TRUE(outcome.all_decided_common);
    EXPECT_LE(outcome.report.rounds, 14 * ceil_log2(static_cast<std::uint64_t>(t)) + 20)
        << "t=" << t;
  }
}

// ---- Few-Crashes-Consensus (Theorem 7) ----------------------------------------------

struct ConsensusCase {
  NodeId n;
  std::int64_t t;
  std::string pattern;
  std::string adversary;
};

class FewCrashesSweep : public ::testing::TestWithParam<ConsensusCase> {};

TEST_P(FewCrashesSweep, SolvesConsensus) {
  const auto& c = GetParam();
  const auto params = ConsensusParams::practical(c.n, c.t);
  const auto inputs = make_inputs(c.n, c.pattern, 23);
  const auto outcome = run_few_crashes_consensus(
      params, inputs, make_adversary(c.adversary, c.n, c.t, 131));
  EXPECT_TRUE(outcome.termination) << "not all non-faulty nodes decided";
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
  EXPECT_EQ(outcome.report.metrics.fallback_pulls, 0)
      << "certified-pull epilogue should stay dormant";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FewCrashesSweep,
    ::testing::Values(
        ConsensusCase{50, 0, "random", "none"}, ConsensusCase{50, 5, "all0", "burst0"},
        ConsensusCase{50, 5, "all1", "burst0"}, ConsensusCase{100, 12, "half", "random"},
        ConsensusCase{100, 12, "one1", "staggered"}, ConsensusCase{100, 19, "random", "random"},
        ConsensusCase{256, 31, "random", "burst0"}, ConsensusCase{256, 31, "all1", "partial"},
        ConsensusCase{256, 51, "random", "disruptor"}, ConsensusCase{400, 79, "half", "random"},
        ConsensusCase{512, 100, "random", "random"}, ConsensusCase{512, 100, "all0", "burst0"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.pattern, "_", c.adversary);
    });

TEST(FewCrashes, DeterministicAcrossRuns) {
  const auto params = ConsensusParams::practical(128, 20);
  const auto inputs = make_inputs(128, "random", 5);
  const auto a = run_few_crashes_consensus(
      params, inputs, sim::make_scheduled(sim::random_crash_schedule(128, 20, 0, 60, 0.0, 9)));
  const auto b = run_few_crashes_consensus(
      params, inputs, sim::make_scheduled(sim::random_crash_schedule(128, 20, 0, 60, 0.0, 9)));
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  EXPECT_EQ(a.report.metrics.messages_total, b.report.metrics.messages_total);
  EXPECT_EQ(a.decision, b.decision);
}

TEST(FewCrashes, RoundsLinearInT) {
  for (std::int64_t t : {8, 16, 32, 64}) {
    const NodeId n = static_cast<NodeId>(8 * t);
    const auto params = ConsensusParams::practical(n, t);
    const auto inputs = make_inputs(n, "random", 3);
    const auto outcome = run_few_crashes_consensus(params, inputs, nullptr);
    EXPECT_TRUE(outcome.all_good());
    EXPECT_LE(outcome.report.rounds, 6 * t + 12 * ceil_log2(static_cast<std::uint64_t>(n)) + 40)
        << "t=" << t;
  }
}

TEST(FewCrashes, BitsNearLinearInN) {
  // Theorem 7: O(n + t log t) one-bit messages.
  std::vector<double> bits_per_node;
  for (NodeId n : {256, 512, 1024}) {
    const std::int64_t t = n / 8;
    const auto params = ConsensusParams::practical(n, t);
    const auto inputs = make_inputs(n, "random", 3);
    const auto outcome = run_few_crashes_consensus(params, inputs, nullptr);
    EXPECT_TRUE(outcome.all_good());
    bits_per_node.push_back(static_cast<double>(outcome.report.metrics.bits_total) /
                            static_cast<double>(n));
  }
  // Bits per node should stay bounded (no super-linear blowup).
  EXPECT_LT(bits_per_node.back(), 2.5 * bits_per_node.front() + 8.0);
}

// ---- Many-Crashes-Consensus (Theorem 8, Corollary 1) ---------------------------------

class ManyCrashesSweep : public ::testing::TestWithParam<ConsensusCase> {};

TEST_P(ManyCrashesSweep, SolvesConsensus) {
  const auto& c = GetParam();
  auto params = ConsensusParams::practical(c.n, c.t);
  const auto inputs = make_inputs(c.n, c.pattern, 29);
  const auto outcome = run_many_crashes_consensus(
      params, inputs, make_adversary(c.adversary, c.n, c.t, 211));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ManyCrashesSweep,
    ::testing::Values(ConsensusCase{64, 16, "random", "random"},
                      ConsensusCase{64, 32, "half", "burst0"},
                      ConsensusCase{64, 63, "random", "none"},
                      ConsensusCase{128, 64, "random", "random"},
                      ConsensusCase{128, 100, "all1", "random"},
                      ConsensusCase{128, 127, "random", "staggered"},
                      ConsensusCase{200, 120, "one1", "partial"},
                      ConsensusCase{200, 199, "random", "random"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.pattern, "_", c.adversary);
    });

TEST(ManyCrashes, SurvivesTotalWipeoutButOne) {
  // t = n-1 and the adversary kills everyone except node 3 at round 0.
  const NodeId n = 64;
  auto params = ConsensusParams::practical(n, n - 1);
  std::vector<sim::CrashEvent> events;
  for (NodeId v = 0; v < n; ++v) {
    if (v != 3) events.push_back(sim::CrashEvent{0, v, 0.0});
  }
  const auto inputs = make_inputs(n, "random", 31);
  const auto outcome =
      run_many_crashes_consensus(params, inputs, sim::make_scheduled(std::move(events)));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
  ASSERT_TRUE(outcome.decision.has_value());
  EXPECT_EQ(*outcome.decision, static_cast<std::uint64_t>(inputs[3]))
      << "lone survivor must decide its own input";
}

TEST(ManyCrashes, RoundBoundMatchesCorollary1Shape) {
  // Corollary 1: n + 3(1 + lg n) rounds. Our schedule adds the inquiry
  // phases and epilogue, still n + O(log n).
  for (NodeId n : {64, 128, 256}) {
    auto params = ConsensusParams::practical(n, n / 2);
    const auto inputs = make_inputs(n, "random", 37);
    const auto outcome = run_many_crashes_consensus(params, inputs, nullptr);
    EXPECT_TRUE(outcome.all_good());
    const auto logn = static_cast<Round>(ceil_log2(static_cast<std::uint64_t>(n)));
    EXPECT_LE(outcome.report.rounds, static_cast<Round>(n) + 8 * logn + 16) << "n=" << n;
    EXPECT_GE(outcome.report.rounds, static_cast<Round>(n) - 1) << "n=" << n;
  }
}

}  // namespace
}  // namespace lft::core
