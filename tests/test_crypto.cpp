// Tests for the authentication substrate: sign/verify round trips and the
// unforgeability properties the authenticated-Byzantine model relies on.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/auth.hpp"

namespace lft::crypto {
namespace {

TEST(Auth, SignVerifyRoundTrip) {
  KeyRegistry registry(10, 123);
  const Signer signer = registry.signer_for(3);
  const Digest d = digest_words(std::vector<std::uint64_t>{1, 2, 3});
  const Signature sig = signer.sign(d);
  EXPECT_EQ(sig.signer, 3);
  EXPECT_TRUE(registry.verify(sig, d));
}

TEST(Auth, WrongDigestFails) {
  KeyRegistry registry(10, 123);
  const Signer signer = registry.signer_for(3);
  const Signature sig = signer.sign(42);
  EXPECT_FALSE(registry.verify(sig, 43));
}

TEST(Auth, ClaimedSignerMismatchFails) {
  // A Byzantine node relabeling its own signature as another node's must be
  // rejected: the tag binds to the signer's secret.
  KeyRegistry registry(10, 123);
  const Signer byz = registry.signer_for(7);
  Signature sig = byz.sign(42);
  sig.signer = 2;  // forgery attempt
  EXPECT_FALSE(registry.verify(sig, 42));
}

TEST(Auth, TamperedTagFails) {
  KeyRegistry registry(10, 123);
  const Signer signer = registry.signer_for(0);
  Signature sig = signer.sign(42);
  sig.tag ^= 1;
  EXPECT_FALSE(registry.verify(sig, 42));
}

TEST(Auth, OutOfRangeSignerRejected) {
  KeyRegistry registry(10, 123);
  EXPECT_FALSE(registry.verify(Signature{-1, 0}, 0));
  EXPECT_FALSE(registry.verify(Signature{10, 0}, 0));
}

TEST(Auth, CrossRegistrySignaturesInvalid) {
  KeyRegistry a(10, 1), b(10, 2);
  const Signature sig = a.signer_for(0).sign(9);
  EXPECT_TRUE(a.verify(sig, 9));
  EXPECT_FALSE(b.verify(sig, 9));
}

TEST(Auth, DistinctNodesProduceDistinctSignatures) {
  KeyRegistry registry(100, 5);
  const Digest d = 777;
  std::vector<std::uint64_t> tags;
  for (NodeId v = 0; v < 100; ++v) tags.push_back(registry.signer_for(v).sign(d).tag);
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(std::adjacent_find(tags.begin(), tags.end()), tags.end());
}

TEST(Auth, DigestsDifferByContent) {
  EXPECT_NE(digest_words(std::vector<std::uint64_t>{1, 2}),
            digest_words(std::vector<std::uint64_t>{2, 1}));
  const std::vector<std::byte> a{std::byte{1}}, b{std::byte{2}};
  EXPECT_NE(digest_bytes(a), digest_bytes(b));
}

}  // namespace
}  // namespace lft::crypto
