// The service plane: replicated state machine semantics (dedup, digests),
// the transport seam's twin property (identical Programs under sim::Engine,
// LoopbackTransport, and SocketTransport produce bit-identical Reports and
// trace digests), live-trace forensics replay, and the lft_serve server /
// client loop over real TCP sockets.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "core/run_options.hpp"
#include "forensics/replay.hpp"
#include "forensics/trace.hpp"
#include "net/transport.hpp"
#include "scenarios/scenarios.hpp"
#include "service/client.hpp"
#include "service/ordering.hpp"
#include "service/replica.hpp"
#include "service/server.hpp"
#include "service/state_machine.hpp"

namespace lft::service {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

// ---- state machine ---------------------------------------------------------

TEST(StateMachine, AppendsAndDedupsPerClient) {
  StateMachine sm;
  const auto a = sm.apply(Command{1, 1, bytes_of("a")});
  EXPECT_EQ(a.index, 0u);
  EXPECT_FALSE(a.duplicate);
  const auto b = sm.apply(Command{2, 1, bytes_of("b")});
  EXPECT_EQ(b.index, 1u);
  EXPECT_FALSE(b.duplicate);

  // Replay of client 1's last request: original index, nothing appended.
  const auto a2 = sm.apply(Command{1, 1, bytes_of("a")});
  EXPECT_TRUE(a2.duplicate);
  EXPECT_EQ(a2.index, 0u);
  EXPECT_EQ(sm.size(), 2u);

  // A fresh request from client 1 appends.
  const auto c = sm.apply(Command{1, 2, bytes_of("c")});
  EXPECT_FALSE(c.duplicate);
  EXPECT_EQ(c.index, 2u);
  EXPECT_EQ(sm.last_request_of(1), 2u);
  EXPECT_EQ(sm.last_request_of(99), 0u);
}

TEST(StateMachine, DigestIsOrderSensitiveAndDeterministic) {
  StateMachine x, y, z;
  (void)x.apply(Command{1, 1, bytes_of("a")});
  (void)x.apply(Command{1, 2, bytes_of("b")});
  (void)y.apply(Command{1, 1, bytes_of("a")});
  (void)y.apply(Command{1, 2, bytes_of("b")});
  EXPECT_EQ(x.digest(), y.digest());
  (void)z.apply(Command{1, 1, bytes_of("b")});
  (void)z.apply(Command{1, 2, bytes_of("a")});
  EXPECT_NE(x.digest(), z.digest());
  // Duplicates do not perturb the digest.
  const auto before = x.digest();
  (void)x.apply(Command{1, 2, bytes_of("b")});
  EXPECT_EQ(x.digest(), before);
}

// ---- the twin property -----------------------------------------------------

struct TwinRun {
  SlotOutcome outcome;
  forensics::Trace trace;
};

TwinRun run_on_engine(NodeId n, std::int64_t t) {
  forensics::TraceRecorder recorder;
  core::RunOptions options;
  options.trace = &recorder;
  TwinRun r;
  r.outcome = run_slot_on_engine(n, t, options);
  r.trace = recorder.take();
  return r;
}

TwinRun run_on_transport(NodeId n, std::int64_t t, bool sockets) {
  forensics::TraceRecorder recorder;
  core::RunOptions options;
  options.trace = &recorder;
  TwinRun r;
  if (sockets) {
    net::SocketTransport transport(make_slot_programs(n, t));
    r.outcome = run_slot(n, transport, options);
  } else {
    core::LoopbackTransport transport(make_slot_programs(n, t));
    r.outcome = run_slot(n, transport, options);
  }
  r.trace = recorder.take();
  return r;
}

void expect_twin(const TwinRun& engine, const TwinRun& live, const char* label) {
  EXPECT_TRUE(engine.outcome.committed) << label;
  EXPECT_TRUE(live.outcome.committed) << label;
  EXPECT_EQ(scenarios::fingerprint(engine.outcome.report),
            scenarios::fingerprint(live.outcome.report))
      << label << ": Report fingerprints diverge";
  ASSERT_EQ(engine.trace.rounds.size(), live.trace.rounds.size()) << label;
  for (std::size_t i = 0; i < engine.trace.rounds.size(); ++i) {
    EXPECT_EQ(engine.trace.rounds[i], live.trace.rounds[i])
        << label << ": round digest " << i << " diverges";
  }
}

TEST(TransportSeam, LoopbackDriverIsBitIdenticalToEngine) {
  const auto engine = run_on_engine(7, 1);
  const auto live = run_on_transport(7, 1, /*sockets=*/false);
  expect_twin(engine, live, "loopback n=7");
  EXPECT_EQ(engine.outcome.report.rounds, live.outcome.report.rounds);
}

TEST(TransportSeam, SocketTransportIsBitIdenticalToEngine) {
  const auto engine = run_on_engine(7, 1);
  const auto live = run_on_transport(7, 1, /*sockets=*/true);
  expect_twin(engine, live, "sockets n=7");
}

TEST(TransportSeam, TwinHoldsAcrossShapes) {
  // Shapes honoring Few-Crashes-Consensus's 5t < n requirement.
  for (const auto& [n, t] : {std::pair<NodeId, std::int64_t>{6, 1}, {12, 2}, {25, 4}}) {
    const auto engine = run_on_engine(n, t);
    const auto live = run_on_transport(n, t, /*sockets=*/false);
    expect_twin(engine, live, ("loopback n=" + std::to_string(n)).c_str());
  }
}

// ---- replica group + forensics bridge --------------------------------------

TEST(ReplicaGroup, CommitsBatchesToAllReplicasIdentically) {
  ReplicaGroup group(ReplicaGroupOptions{});
  std::vector<Command> batch;
  batch.push_back(Command{1, 1, bytes_of("set x 1")});
  batch.push_back(Command{2, 1, bytes_of("set y 2")});
  const auto first = group.commit(batch);
  ASSERT_EQ(first.applied.size(), 2u);
  EXPECT_EQ(first.applied[0].index, 0u);
  EXPECT_EQ(first.applied[1].index, 1u);
  EXPECT_GT(first.slot_rounds, 0);
  EXPECT_GT(first.slot_messages, 0);

  // Second batch, with one duplicate riding along.
  std::vector<Command> second;
  second.push_back(Command{1, 1, bytes_of("set x 1")});  // replay
  second.push_back(Command{1, 2, bytes_of("set x 3")});
  const auto r = group.commit(second);
  EXPECT_TRUE(r.applied[0].duplicate);
  EXPECT_EQ(r.applied[0].index, 0u);
  EXPECT_FALSE(r.applied[1].duplicate);
  EXPECT_EQ(r.applied[1].index, 2u);
  EXPECT_EQ(group.machine().size(), 3u);
  EXPECT_EQ(group.slots(), 2u);
}

TEST(ReplicaGroup, LiveSlotTraceReplaysUnderTheEngine) {
  const std::string path = ::testing::TempDir() + "lft_service_slot.trace";
  ReplicaGroupOptions options;
  options.trace_path = path;
  ReplicaGroup group(options);
  std::vector<Command> batch{Command{1, 1, bytes_of("hello")}};
  (void)group.commit(batch);
  ASSERT_TRUE(group.trace_saved());

  // The live trace must replay cleanly against the registered scenario —
  // the forensics plane accepts live service executions as first-class.
  const auto trace = forensics::load_trace(path);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->meta.scenario, kSlotScenarioName);
  const auto replayed = forensics::replay(*trace, /*threads=*/1);
  EXPECT_FALSE(replayed.divergence.diverged)
      << "live slot trace diverged from engine replay: " << replayed.divergence.detail;
  std::remove(path.c_str());
}

// ---- server + client over real TCP -----------------------------------------

/// Server on its own thread; the destructor shuts it down through the wire
/// (kShutdown) if a test did not already.
struct RunningServer {
  Server server;
  std::thread thread;

  explicit RunningServer(ServerOptions options = {}) : server(std::move(options)) {
    thread = std::thread([this] { server.run(); });
  }
  ~RunningServer() {
    Client stopper(server.port(), /*client_id=*/0xdeadbeef);
    if (stopper.connected()) (void)stopper.shutdown_server();
    thread.join();
  }
};

TEST(ServiceServer, ProposeAckAndRead) {
  RunningServer rs;
  Client client(rs.server.port(), /*client_id=*/1);
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.welcome_last_request(), 0u);

  const auto a = client.propose(1, bytes_of("set x 1"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->index, 0u);
  EXPECT_FALSE(a->duplicate);

  const auto b = client.propose(2, bytes_of("set y 2"));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->index, 1u);

  const auto state = client.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, 2u);
  EXPECT_GE(state->slots, 1u);
}

TEST(ServiceServer, SessionReconnectDedupsReplayedRequest) {
  RunningServer rs;
  std::uint64_t first_index = 0;
  {
    Client client(rs.server.port(), /*client_id=*/42);
    ASSERT_TRUE(client.connected());
    const auto a = client.propose(7, bytes_of("payment"));
    ASSERT_TRUE(a.has_value());
    first_index = a->index;
  }  // connection dies with the ack possibly unseen by the application

  // Reconnect: the welcome reports the last applied request, and replaying
  // it acks the original log index without a second append.
  Client again(rs.server.port(), /*client_id=*/42);
  ASSERT_TRUE(again.connected());
  EXPECT_EQ(again.welcome_last_request(), 7u);
  const auto replay = again.propose(7, bytes_of("payment"));
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->duplicate);
  EXPECT_EQ(replay->index, first_index);
  const auto state = again.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, 1u);

  const auto fresh = again.propose(8, bytes_of("refund"));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->duplicate);
}

TEST(ServiceServer, SubscriberSeesEveryCommitInLogOrder) {
  RunningServer rs;
  Client subscriber(rs.server.port(), /*client_id=*/100);
  ASSERT_TRUE(subscriber.connected());
  ASSERT_TRUE(subscriber.subscribe(0));

  Client writer(rs.server.port(), /*client_id=*/1);
  ASSERT_TRUE(writer.connected());
  constexpr int kCommands = 20;
  for (int i = 1; i <= kCommands; ++i) {
    const auto a = writer.propose(static_cast<std::uint64_t>(i),
                                  bytes_of("cmd " + std::to_string(i)));
    ASSERT_TRUE(a.has_value());
  }

  for (int i = 0; i < kCommands; ++i) {
    const auto e = subscriber.next_commit();
    ASSERT_TRUE(e.has_value()) << "commit " << i;
    EXPECT_EQ(e->index, static_cast<std::uint64_t>(i)) << "commits out of order";
    EXPECT_EQ(e->client_id, 1u);
    EXPECT_EQ(e->request_id, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(e->payload, bytes_of("cmd " + std::to_string(i + 1)));
  }
}

TEST(ServiceServer, LinearizabilitySmokeAcrossConcurrentClients) {
  RunningServer rs;
  constexpr int kClients = 4;
  constexpr int kPerClient = 25;

  std::vector<std::vector<std::uint64_t>> indices(kClients);
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      Client client(rs.server.port(), static_cast<std::uint64_t>(c + 1));
      ASSERT_TRUE(client.connected());
      for (int i = 1; i <= kPerClient; ++i) {
        const auto a = client.propose(static_cast<std::uint64_t>(i),
                                      bytes_of(std::to_string(c) + ":" + std::to_string(i)));
        ASSERT_TRUE(a.has_value());
        ASSERT_FALSE(a->duplicate);
        indices[static_cast<std::size_t>(c)].push_back(a->index);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every command landed exactly once, and each client's commands appear in
  // its submission order — the per-session guarantee a total order plus one
  // outstanding request per client implies.
  std::vector<bool> seen(kClients * kPerClient, false);
  for (const auto& per_client : indices) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kPerClient));
    for (std::size_t i = 0; i + 1 < per_client.size(); ++i) {
      EXPECT_LT(per_client[i], per_client[i + 1]) << "session order not preserved";
    }
    for (const auto index : per_client) {
      ASSERT_LT(index, seen.size());
      EXPECT_FALSE(seen[index]) << "two commands share log index " << index;
      seen[index] = true;
    }
  }
  Client reader(rs.server.port(), /*client_id=*/999);
  ASSERT_TRUE(reader.connected());
  const auto state = reader.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(ServiceServer, ServesOverSocketTransportReplicas) {
  ServerOptions options;
  options.use_sockets = true;
  RunningServer rs(options);
  Client client(rs.server.port(), /*client_id=*/5);
  ASSERT_TRUE(client.connected());
  const auto a = client.propose(1, bytes_of("over sockets"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->index, 0u);
  const auto state = client.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, 1u);
}

TEST(ServiceServer, LiveServerTraceReplaysUnderTheEngine) {
  const std::string path = ::testing::TempDir() + "lft_serve_live.trace";
  {
    ServerOptions options;
    options.trace_path = path;
    RunningServer rs(options);
    Client client(rs.server.port(), /*client_id=*/1);
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.propose(1, bytes_of("traced")).has_value());
  }
  const auto trace = forensics::load_trace(path);
  ASSERT_TRUE(trace.has_value());
  const auto replayed = forensics::replay(*trace, /*threads=*/1);
  EXPECT_FALSE(replayed.divergence.diverged)
      << "live server trace diverged: " << replayed.divergence.detail;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lft::service
