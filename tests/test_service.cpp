// The service plane: replicated state machine semantics (dedup, digests),
// the transport seam's twin property (identical Programs under sim::Engine,
// LoopbackTransport, and SocketTransport produce bit-identical Reports and
// trace digests), live-trace forensics replay, and the lft_serve server /
// client loop over real TCP sockets.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.hpp"
#include "net/frame.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

#include "core/driver.hpp"
#include "core/run_options.hpp"
#include "forensics/replay.hpp"
#include "forensics/trace.hpp"
#include "net/transport.hpp"
#include "scenarios/scenarios.hpp"
#include "service/client.hpp"
#include "service/ordering.hpp"
#include "service/replica.hpp"
#include "service/server.hpp"
#include "service/state_machine.hpp"
#include "service/wire.hpp"

namespace lft::service {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

// ---- state machine ---------------------------------------------------------

TEST(StateMachine, AppendsAndDedupsPerClient) {
  StateMachine sm;
  const auto a = sm.apply(Command{1, 1, bytes_of("a")});
  EXPECT_EQ(a.index, 0u);
  EXPECT_FALSE(a.duplicate);
  const auto b = sm.apply(Command{2, 1, bytes_of("b")});
  EXPECT_EQ(b.index, 1u);
  EXPECT_FALSE(b.duplicate);

  // Replay of client 1's last request: original index, nothing appended.
  const auto a2 = sm.apply(Command{1, 1, bytes_of("a")});
  EXPECT_TRUE(a2.duplicate);
  EXPECT_EQ(a2.index, 0u);
  EXPECT_EQ(sm.size(), 2u);

  // A fresh request from client 1 appends.
  const auto c = sm.apply(Command{1, 2, bytes_of("c")});
  EXPECT_FALSE(c.duplicate);
  EXPECT_EQ(c.index, 2u);
  EXPECT_EQ(sm.last_request_of(1), 2u);
  EXPECT_EQ(sm.last_request_of(99), 0u);
}

TEST(StateMachine, DigestIsOrderSensitiveAndDeterministic) {
  StateMachine x, y, z;
  (void)x.apply(Command{1, 1, bytes_of("a")});
  (void)x.apply(Command{1, 2, bytes_of("b")});
  (void)y.apply(Command{1, 1, bytes_of("a")});
  (void)y.apply(Command{1, 2, bytes_of("b")});
  EXPECT_EQ(x.digest(), y.digest());
  (void)z.apply(Command{1, 1, bytes_of("b")});
  (void)z.apply(Command{1, 2, bytes_of("a")});
  EXPECT_NE(x.digest(), z.digest());
  // Duplicates do not perturb the digest.
  const auto before = x.digest();
  (void)x.apply(Command{1, 2, bytes_of("b")});
  EXPECT_EQ(x.digest(), before);
}

// ---- the twin property -----------------------------------------------------

struct TwinRun {
  SlotOutcome outcome;
  forensics::Trace trace;
};

TwinRun run_on_engine(NodeId n, std::int64_t t) {
  forensics::TraceRecorder recorder;
  core::RunOptions options;
  options.trace = &recorder;
  TwinRun r;
  r.outcome = run_slot_on_engine(n, t, options);
  r.trace = recorder.take();
  return r;
}

TwinRun run_on_transport(NodeId n, std::int64_t t, bool sockets) {
  forensics::TraceRecorder recorder;
  core::RunOptions options;
  options.trace = &recorder;
  TwinRun r;
  if (sockets) {
    net::SocketTransport transport(make_slot_programs(n, t));
    r.outcome = run_slot(n, transport, options);
  } else {
    core::LoopbackTransport transport(make_slot_programs(n, t));
    r.outcome = run_slot(n, transport, options);
  }
  r.trace = recorder.take();
  return r;
}

void expect_twin(const TwinRun& engine, const TwinRun& live, const char* label) {
  EXPECT_TRUE(engine.outcome.committed) << label;
  EXPECT_TRUE(live.outcome.committed) << label;
  EXPECT_EQ(scenarios::fingerprint(engine.outcome.report),
            scenarios::fingerprint(live.outcome.report))
      << label << ": Report fingerprints diverge";
  ASSERT_EQ(engine.trace.rounds.size(), live.trace.rounds.size()) << label;
  for (std::size_t i = 0; i < engine.trace.rounds.size(); ++i) {
    EXPECT_EQ(engine.trace.rounds[i], live.trace.rounds[i])
        << label << ": round digest " << i << " diverges";
  }
}

TEST(TransportSeam, LoopbackDriverIsBitIdenticalToEngine) {
  const auto engine = run_on_engine(7, 1);
  const auto live = run_on_transport(7, 1, /*sockets=*/false);
  expect_twin(engine, live, "loopback n=7");
  EXPECT_EQ(engine.outcome.report.rounds, live.outcome.report.rounds);
}

TEST(TransportSeam, SocketTransportIsBitIdenticalToEngine) {
  const auto engine = run_on_engine(7, 1);
  const auto live = run_on_transport(7, 1, /*sockets=*/true);
  expect_twin(engine, live, "sockets n=7");
}

TEST(TransportSeam, TwinHoldsAcrossShapes) {
  // Shapes honoring Few-Crashes-Consensus's 5t < n requirement.
  for (const auto& [n, t] : {std::pair<NodeId, std::int64_t>{6, 1}, {12, 2}, {25, 4}}) {
    const auto engine = run_on_engine(n, t);
    const auto live = run_on_transport(n, t, /*sockets=*/false);
    expect_twin(engine, live, ("loopback n=" + std::to_string(n)).c_str());
  }
}

// ---- replica group + forensics bridge --------------------------------------

TEST(ReplicaGroup, CommitsBatchesToAllReplicasIdentically) {
  ReplicaGroup group(ReplicaGroupOptions{});
  std::vector<Command> batch;
  batch.push_back(Command{1, 1, bytes_of("set x 1")});
  batch.push_back(Command{2, 1, bytes_of("set y 2")});
  const auto first = group.commit(batch);
  ASSERT_EQ(first.applied.size(), 2u);
  EXPECT_EQ(first.applied[0].index, 0u);
  EXPECT_EQ(first.applied[1].index, 1u);
  EXPECT_GT(first.slot_rounds, 0);
  EXPECT_GT(first.slot_messages, 0);

  // Second batch, with one duplicate riding along.
  std::vector<Command> second;
  second.push_back(Command{1, 1, bytes_of("set x 1")});  // replay
  second.push_back(Command{1, 2, bytes_of("set x 3")});
  const auto r = group.commit(second);
  EXPECT_TRUE(r.applied[0].duplicate);
  EXPECT_EQ(r.applied[0].index, 0u);
  EXPECT_FALSE(r.applied[1].duplicate);
  EXPECT_EQ(r.applied[1].index, 2u);
  EXPECT_EQ(group.machine().size(), 3u);
  EXPECT_EQ(group.slots(), 2u);
}

TEST(ReplicaGroup, LiveSlotTraceReplaysUnderTheEngine) {
  const std::string path = ::testing::TempDir() + "lft_service_slot.trace";
  ReplicaGroupOptions options;
  options.trace_path = path;
  ReplicaGroup group(options);
  std::vector<Command> batch{Command{1, 1, bytes_of("hello")}};
  (void)group.commit(batch);
  ASSERT_TRUE(group.trace_saved());

  // The live trace must replay cleanly against the registered scenario —
  // the forensics plane accepts live service executions as first-class.
  const auto trace = forensics::load_trace(path);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->meta.scenario, kSlotScenarioName);
  const auto replayed = forensics::replay(*trace, /*threads=*/1);
  EXPECT_FALSE(replayed.divergence.diverged)
      << "live slot trace diverged from engine replay: " << replayed.divergence.detail;
  std::remove(path.c_str());
}

// ---- server + client over real TCP -----------------------------------------

/// Server on its own thread; the destructor shuts it down through the wire
/// (kShutdown) if a test did not already.
struct RunningServer {
  Server server;
  std::thread thread;

  explicit RunningServer(ServerOptions options = {}) : server(std::move(options)) {
    thread = std::thread([this] { server.run(); });
  }
  ~RunningServer() {
    Client stopper(server.port(), /*client_id=*/0xdeadbeef);
    if (stopper.connected()) (void)stopper.shutdown_server();
    thread.join();
  }
};

TEST(ServiceServer, ProposeAckAndRead) {
  RunningServer rs;
  Client client(rs.server.port(), /*client_id=*/1);
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.welcome_last_request(), 0u);

  const auto a = client.propose(1, bytes_of("set x 1"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->index, 0u);
  EXPECT_FALSE(a->duplicate);

  const auto b = client.propose(2, bytes_of("set y 2"));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->index, 1u);

  const auto state = client.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, 2u);
  EXPECT_GE(state->slots, 1u);
}

TEST(ServiceServer, StatsRequestReturnsLiveTelemetrySnapshot) {
  RunningServer rs;
  Client client(rs.server.port(), /*client_id=*/1);
  ASSERT_TRUE(client.connected());
  for (std::uint64_t r = 1; r <= 5; ++r) {
    ASSERT_TRUE(client.propose(r, bytes_of("cmd")).has_value());
  }

  const auto snapshot = client.server_stats();
  ASSERT_TRUE(snapshot.has_value());
  // The request-latency histogram saw every proposal, with sane bounds and
  // nonzero percentiles (steady_clock deltas through a real commit path).
  const auto* latency = snapshot->find_histogram("lft_service_request_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->data.count(), 5u);
  EXPECT_GT(latency->data.percentile(50.0), 0u);
  EXPECT_GT(latency->data.percentile(99.0), 0u);
  EXPECT_LE(latency->data.min(), latency->data.max());
  // Stats fold in the serving counters; the stats request itself was counted.
  const auto* proposals = snapshot->find_counter("lft_service_proposals_total");
  ASSERT_NE(proposals, nullptr);
  EXPECT_EQ(proposals->value, 5u);
  const auto* stats_requests = snapshot->find_counter("lft_service_stats_requests_total");
  ASSERT_NE(stats_requests, nullptr);
  EXPECT_EQ(stats_requests->value, 1u);

  // A second fetch sees strictly newer state (monotonic counters).
  const auto again = client.server_stats();
  ASSERT_TRUE(again.has_value());
  const auto* again_requests = again->find_counter("lft_service_stats_requests_total");
  ASSERT_NE(again_requests, nullptr);
  EXPECT_EQ(again_requests->value, 2u);
}

TEST(ServiceServer, SessionReconnectDedupsReplayedRequest) {
  RunningServer rs;
  std::uint64_t first_index = 0;
  {
    Client client(rs.server.port(), /*client_id=*/42);
    ASSERT_TRUE(client.connected());
    const auto a = client.propose(7, bytes_of("payment"));
    ASSERT_TRUE(a.has_value());
    first_index = a->index;
  }  // connection dies with the ack possibly unseen by the application

  // Reconnect: the welcome reports the last applied request, and replaying
  // it acks the original log index without a second append.
  Client again(rs.server.port(), /*client_id=*/42);
  ASSERT_TRUE(again.connected());
  EXPECT_EQ(again.welcome_last_request(), 7u);
  const auto replay = again.propose(7, bytes_of("payment"));
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->duplicate);
  EXPECT_EQ(replay->index, first_index);
  const auto state = again.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, 1u);

  const auto fresh = again.propose(8, bytes_of("refund"));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->duplicate);
}

TEST(ServiceServer, SubscriberSeesEveryCommitInLogOrder) {
  RunningServer rs;
  Client subscriber(rs.server.port(), /*client_id=*/100);
  ASSERT_TRUE(subscriber.connected());
  ASSERT_TRUE(subscriber.subscribe(0));

  Client writer(rs.server.port(), /*client_id=*/1);
  ASSERT_TRUE(writer.connected());
  constexpr int kCommands = 20;
  for (int i = 1; i <= kCommands; ++i) {
    const auto a = writer.propose(static_cast<std::uint64_t>(i),
                                  bytes_of("cmd " + std::to_string(i)));
    ASSERT_TRUE(a.has_value());
  }

  for (int i = 0; i < kCommands; ++i) {
    const auto e = subscriber.next_commit();
    ASSERT_TRUE(e.has_value()) << "commit " << i;
    EXPECT_EQ(e->index, static_cast<std::uint64_t>(i)) << "commits out of order";
    EXPECT_EQ(e->client_id, 1u);
    EXPECT_EQ(e->request_id, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(e->payload, bytes_of("cmd " + std::to_string(i + 1)));
  }
}

TEST(ServiceServer, LinearizabilitySmokeAcrossConcurrentClients) {
  RunningServer rs;
  constexpr int kClients = 4;
  constexpr int kPerClient = 25;

  std::vector<std::vector<std::uint64_t>> indices(kClients);
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      Client client(rs.server.port(), static_cast<std::uint64_t>(c + 1));
      ASSERT_TRUE(client.connected());
      for (int i = 1; i <= kPerClient; ++i) {
        const auto a = client.propose(static_cast<std::uint64_t>(i),
                                      bytes_of(std::to_string(c) + ":" + std::to_string(i)));
        ASSERT_TRUE(a.has_value());
        ASSERT_FALSE(a->duplicate);
        indices[static_cast<std::size_t>(c)].push_back(a->index);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every command landed exactly once, and each client's commands appear in
  // its submission order — the per-session guarantee a total order plus one
  // outstanding request per client implies.
  std::vector<bool> seen(kClients * kPerClient, false);
  for (const auto& per_client : indices) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kPerClient));
    for (std::size_t i = 0; i + 1 < per_client.size(); ++i) {
      EXPECT_LT(per_client[i], per_client[i + 1]) << "session order not preserved";
    }
    for (const auto index : per_client) {
      ASSERT_LT(index, seen.size());
      EXPECT_FALSE(seen[index]) << "two commands share log index " << index;
      seen[index] = true;
    }
  }
  Client reader(rs.server.port(), /*client_id=*/999);
  ASSERT_TRUE(reader.connected());
  const auto state = reader.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(ServiceServer, ServesOverSocketTransportReplicas) {
  ServerOptions options;
  options.use_sockets = true;
  RunningServer rs(options);
  Client client(rs.server.port(), /*client_id=*/5);
  ASSERT_TRUE(client.connected());
  const auto a = client.propose(1, bytes_of("over sockets"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->index, 0u);
  const auto state = client.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, 1u);
}

// ---- frame delivery at adversarial granularity ------------------------------

std::vector<std::vector<std::byte>> sample_payloads() {
  // Sizes chosen to straddle the u32 length prefix and chunk boundaries;
  // includes an empty payload (legal at the framing layer).
  std::vector<std::vector<std::byte>> payloads;
  for (const std::size_t size : {0u, 1u, 2u, 3u, 4u, 5u, 13u, 64u, 1000u, 4096u}) {
    std::vector<std::byte> p(size);
    for (std::size_t j = 0; j < size; ++j) {
      p[j] = std::byte{static_cast<unsigned char>(size + 31 * j)};
    }
    payloads.push_back(std::move(p));
  }
  return payloads;
}

std::vector<std::byte> stream_of(const std::vector<std::vector<std::byte>>& payloads) {
  std::vector<std::byte> stream;
  for (const auto& p : payloads) net::append_frame(stream, p);
  return stream;
}

TEST(FrameParser, ReassemblesFramesFedByteByByte) {
  const auto payloads = sample_payloads();
  const auto stream = stream_of(payloads);
  net::FrameParser parser;
  std::vector<std::vector<std::byte>> got;
  for (const std::byte b : stream) {
    parser.feed(std::span<const std::byte>(&b, 1));
    std::vector<std::byte> payload;
    while (parser.next(payload)) got.push_back(payload);
  }
  EXPECT_EQ(got, payloads);
  EXPECT_EQ(parser.buffered(), 0u);
  EXPECT_FALSE(parser.corrupt());
}

TEST(FrameParser, DirectFillReassemblesAtAdversarialSplits) {
  // The writable()/commit() path the nonblocking sessions use, with the
  // stream chopped at every prime-ish granularity: frames land split across
  // the length prefix, across payload boundaries, and many per chunk.
  const auto payloads = sample_payloads();
  const auto stream = stream_of(payloads);
  for (const std::size_t split : {1u, 2u, 3u, 4u, 5u, 7u, 13u, 64u, 1021u}) {
    net::FrameParser parser;
    std::vector<std::vector<std::byte>> got;
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t n = std::min(split, stream.size() - at);
      const std::span<std::byte> buf = parser.writable(n);
      ASSERT_GE(buf.size(), n);
      std::memcpy(buf.data(), stream.data() + at, n);
      parser.commit(n);
      at += n;
      std::span<const std::byte> view;
      while (parser.next_view(view)) got.emplace_back(view.begin(), view.end());
    }
    EXPECT_EQ(got, payloads) << "split " << split;
    EXPECT_FALSE(parser.corrupt());
  }
}

TEST(FrameParser, OversizedLengthPrefixIsCorruptionNotAnAllocation) {
  net::FrameParser parser;
  const std::uint32_t len = net::kMaxFrameBytes + 1;
  std::byte prefix[4];
  std::memcpy(prefix, &len, sizeof prefix);
  // Byte by byte: corruption must latch once the prefix completes, without
  // waiting for (or allocating) the advertised body.
  for (const std::byte b : prefix) parser.feed(std::span<const std::byte>(&b, 1));
  std::span<const std::byte> view;
  EXPECT_FALSE(parser.next_view(view));
  EXPECT_TRUE(parser.corrupt());
}

// ---- client demux under adversarial delivery --------------------------------

void send_in_chunks(const net::Fd& fd, std::span<const std::byte> bytes,
                    std::size_t chunk) {
  for (std::size_t at = 0; at < bytes.size(); at += chunk) {
    ASSERT_TRUE(net::send_all(fd, bytes.subspan(at, std::min(chunk, bytes.size() - at))));
  }
}

/// A scripted raw-TCP peer speaking the server's side of the wire protocol,
/// delivering every response byte by byte: the client must demux a pipelined
/// window's kAck stream from interleaved kCommit pushes however the bytes
/// arrive.
TEST(ClientDemux, SplitsAcksAndCommitsAcrossAPipelinedWindow) {
  constexpr std::uint64_t kClientId = 77;
  constexpr int kWindow = 8;
  std::uint16_t port = 0;
  net::Fd listener = net::listen_tcp(port);

  std::thread peer([&] {
    net::Fd conn = net::accept_one(listener);
    ASSERT_TRUE(conn.valid());
    std::vector<std::byte> scratch;

    std::vector<std::byte> hello;
    ASSERT_TRUE(net::recv_frame(conn, hello));
    ByteReader hr(hello);
    const auto hello_type = hr.get_u8();
    const auto hello_client = hr.get_u64();
    ASSERT_TRUE(hello_type && hello_client);
    ASSERT_EQ(*hello_type, static_cast<std::uint8_t>(MsgType::kHello));
    ASSERT_EQ(*hello_client, kClientId);
    {
      ByteWriter w(scratch);
      w.put_u8(static_cast<std::uint8_t>(MsgType::kWelcome));
      w.put_u64(kClientId);
      w.put_u64(0);
      std::vector<std::byte> framed;
      net::append_frame(framed, w.view());
      send_in_chunks(conn, framed, 1);  // even the handshake arrives in drips
    }

    std::vector<std::uint64_t> requests;
    for (int i = 0; i < kWindow; ++i) {
      std::vector<std::byte> frame;
      ASSERT_TRUE(net::recv_frame(conn, frame));
      ByteReader r(frame);
      const auto type = r.get_u8();
      const auto request = r.get_u64();
      ASSERT_TRUE(type && request);
      ASSERT_EQ(*type, static_cast<std::uint8_t>(MsgType::kPropose));
      requests.push_back(*request);
    }

    // One burst holding the whole window's worth of kCommit pushes
    // interleaved before each kAck, then delivered a byte at a time.
    std::vector<std::byte> burst;
    for (int i = 0; i < kWindow; ++i) {
      const auto index = static_cast<std::uint64_t>(i);
      {
        ByteWriter c(scratch);
        c.put_u8(static_cast<std::uint8_t>(MsgType::kCommit));
        c.put_u64(index);
        c.put_u64(kClientId);
        c.put_u64(requests[static_cast<std::size_t>(i)]);
        const auto entry = bytes_of("entry " + std::to_string(i + 1));
        c.put_u32(static_cast<std::uint32_t>(entry.size()));
        c.put_bytes(entry);
        net::append_frame(burst, c.view());
      }
      {
        ByteWriter a(scratch);
        a.put_u8(static_cast<std::uint8_t>(MsgType::kAck));
        a.put_u64(requests[static_cast<std::size_t>(i)]);
        a.put_u64(index);
        a.put_u8(0);
        net::append_frame(burst, a.view());
      }
    }
    send_in_chunks(conn, burst, 1);
  });

  Client client(port, kClientId);
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.welcome_last_request(), 0u);
  for (int i = 1; i <= kWindow; ++i) {
    client.queue_propose(static_cast<std::uint64_t>(i),
                         bytes_of("req " + std::to_string(i)));
  }
  ASSERT_TRUE(client.flush());

  for (int i = 1; i <= kWindow; ++i) {
    const auto ack = client.recv_ack();
    ASSERT_TRUE(ack.has_value()) << "ack " << i;
    EXPECT_EQ(ack->request_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(ack->applied.index, static_cast<std::uint64_t>(i - 1));
    EXPECT_FALSE(ack->applied.duplicate);
  }
  // The commits interleaved into the ack stream were demuxed aside, in order.
  for (int i = 1; i <= kWindow; ++i) {
    const auto e = client.next_commit();
    ASSERT_TRUE(e.has_value()) << "commit " << i;
    EXPECT_EQ(e->index, static_cast<std::uint64_t>(i - 1));
    EXPECT_EQ(e->client_id, kClientId);
    EXPECT_EQ(e->request_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(e->payload, bytes_of("entry " + std::to_string(i)));
  }
  peer.join();
}

// ---- the pipelined group across depths --------------------------------------

TEST(ReplicaGroup, PipelineDepthsRetireFifoAndBitIdentical) {
  // Every slot at every depth must be the engine twin's consensus execution
  // (equal Report fingerprints), retire in FIFO order (log indices are the
  // submission order), and leave an identical log digest — depth changes
  // throughput, never the log. Depths > 1 also exercise pooled SlotContext
  // reuse: a reset context must execute bit-identically to a fresh one.
  constexpr int kBatches = 6;
  constexpr int kPerBatch = 5;
  const std::uint64_t engine_fp = scenarios::fingerprint(
      run_slot_on_engine(kDefaultGroupSize, kDefaultFaultBudget).report);

  std::uint64_t ref_digest = 0;
  for (const int depth : {1, 2, 4}) {
    ReplicaGroupOptions options;
    options.pipeline = depth;
    ReplicaGroup group(options);
    std::vector<std::uint64_t> fingerprints;
    std::vector<Applied> applied;
    int enqueued = 0;
    while (applied.size() < static_cast<std::size_t>(kBatches * kPerBatch)) {
      while (enqueued < kBatches && group.can_enqueue()) {
        std::vector<Command> batch;
        for (int j = 0; j < kPerBatch; ++j) {
          batch.push_back(Command{static_cast<std::uint64_t>(j + 1),
                                  static_cast<std::uint64_t>(enqueued + 1),
                                  bytes_of(std::to_string(enqueued) + ":" + std::to_string(j))});
        }
        group.enqueue(std::move(batch));
        ++enqueued;
      }
      group.step();
      while (group.head_ready()) {
        auto r = group.take_head();
        fingerprints.push_back(r.slot_fingerprint);
        applied.insert(applied.end(), r.applied.begin(), r.applied.end());
      }
    }
    EXPECT_EQ(group.in_flight(), 0u) << "depth " << depth;
    ASSERT_EQ(fingerprints.size(), static_cast<std::size_t>(kBatches));
    for (const auto fp : fingerprints) {
      EXPECT_EQ(fp, engine_fp) << "depth " << depth << ": slot is not the engine twin";
    }
    for (std::size_t i = 0; i < applied.size(); ++i) {
      EXPECT_EQ(applied[i].index, i) << "depth " << depth << ": not FIFO";
      EXPECT_FALSE(applied[i].duplicate);
    }
    if (depth == 1) {
      ref_digest = group.machine().digest();
    } else {
      EXPECT_EQ(group.machine().digest(), ref_digest)
          << "depth " << depth << " left a different log than depth 1";
    }
  }
}

// ---- the server across reactor backends -------------------------------------

class ServerBackends : public ::testing::TestWithParam<net::ReactorBackend> {
 protected:
  [[nodiscard]] bool available() const {
    return GetParam() != net::ReactorBackend::kIoUring || net::io_uring_available();
  }
};

TEST_P(ServerBackends, PipelinedWindowAcksInOrder) {
  if (!available()) GTEST_SKIP() << "io_uring unavailable on this kernel";
  ServerOptions options;
  options.backend = GetParam();
  options.pipeline = 4;
  RunningServer rs(options);
  EXPECT_STREQ(rs.server.backend(),
               GetParam() == net::ReactorBackend::kEpoll ? "epoll" : "io_uring");

  Client client(rs.server.port(), /*client_id=*/1);
  ASSERT_TRUE(client.connected());
  constexpr int kRequests = 200;
  constexpr int kWindow = 16;
  int sent = 0;
  int acked = 0;
  while (acked < kRequests) {
    while (sent < kRequests && sent - acked < kWindow) {
      ++sent;
      client.queue_propose(static_cast<std::uint64_t>(sent),
                           bytes_of("w " + std::to_string(sent)));
    }
    ASSERT_TRUE(client.flush());
    const auto ack = client.recv_ack();
    ASSERT_TRUE(ack.has_value()) << "after " << acked << " acks";
    ++acked;
    EXPECT_EQ(ack->request_id, static_cast<std::uint64_t>(acked));
    EXPECT_EQ(ack->applied.index, static_cast<std::uint64_t>(acked - 1));
    EXPECT_FALSE(ack->applied.duplicate);
  }
  const auto state = client.read_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->size, static_cast<std::uint64_t>(kRequests));
}

std::string server_backend_name(
    const ::testing::TestParamInfo<net::ReactorBackend>& info) {
  return info.param == net::ReactorBackend::kEpoll ? "epoll" : "io_uring";
}

INSTANTIATE_TEST_SUITE_P(Backends, ServerBackends,
                         ::testing::Values(net::ReactorBackend::kEpoll,
                                           net::ReactorBackend::kIoUring),
                         server_backend_name);

TEST(ServiceServer, LogDigestIsIdenticalAcrossBackendsAndDepths) {
  // The same single-session workload must leave a bit-identical log —
  // equal digest — whatever the reactor backend or pipeline depth, and the
  // digest must match a direct StateMachine replay of the same commands.
  constexpr int kRequests = 60;
  constexpr int kWindow = 8;
  StateMachine expect;
  for (int i = 1; i <= kRequests; ++i) {
    (void)expect.apply(Command{1, static_cast<std::uint64_t>(i),
                               bytes_of("op " + std::to_string(i))});
  }

  struct Config {
    net::ReactorBackend backend;
    int pipeline;
  };
  for (const auto& config : {Config{net::ReactorBackend::kEpoll, 1},
                             Config{net::ReactorBackend::kEpoll, 4},
                             Config{net::ReactorBackend::kIoUring, 2},
                             Config{net::ReactorBackend::kIoUring, 4}}) {
    if (config.backend == net::ReactorBackend::kIoUring && !net::io_uring_available()) {
      continue;
    }
    ServerOptions options;
    options.backend = config.backend;
    options.pipeline = config.pipeline;
    RunningServer rs(options);
    Client client(rs.server.port(), /*client_id=*/1);
    ASSERT_TRUE(client.connected());
    int sent = 0;
    int acked = 0;
    while (acked < kRequests) {
      while (sent < kRequests && sent - acked < kWindow) {
        ++sent;
        client.queue_propose(static_cast<std::uint64_t>(sent),
                             bytes_of("op " + std::to_string(sent)));
      }
      ASSERT_TRUE(client.flush());
      ASSERT_TRUE(client.recv_ack().has_value());
      ++acked;
    }
    const auto state = client.read_state();
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(state->size, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(state->digest, expect.digest())
        << rs.server.backend() << " depth " << config.pipeline
        << " produced a different log";
  }
}

TEST(ServiceServer, LiveServerTraceReplaysUnderTheEngine) {
  const std::string path = ::testing::TempDir() + "lft_serve_live.trace";
  {
    ServerOptions options;
    options.trace_path = path;
    RunningServer rs(options);
    Client client(rs.server.port(), /*client_id=*/1);
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.propose(1, bytes_of("traced")).has_value());
  }
  const auto trace = forensics::load_trace(path);
  ASSERT_TRUE(trace.has_value());
  const auto replayed = forensics::replay(*trace, /*threads=*/1);
  EXPECT_FALSE(replayed.divergence.diverged)
      << "live server trace diverged: " << replayed.divergence.detail;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lft::service
