// Tests for the single-port engine (Section 8 model): one send and one poll
// per round, FIFO port queues, no delivery signals, crash semantics.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/single_port.hpp"

namespace lft::sim {
namespace {

class SpLambdaProcess final : public SinglePortProcess {
 public:
  using Fn = std::function<SpAction(SpContext&, const std::optional<Message>&)>;
  explicit SpLambdaProcess(Fn fn) : fn_(std::move(fn)) {}
  SpAction on_round(SpContext& ctx, const std::optional<Message>& received) override {
    return fn_(ctx, received);
  }

 private:
  Fn fn_;
};

std::unique_ptr<SinglePortProcess> sp_lambda(SpLambdaProcess::Fn fn) {
  return std::make_unique<SpLambdaProcess>(std::move(fn));
}

std::unique_ptr<SinglePortProcess> sp_idle() {
  return sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
    ctx.halt();
    return SpAction{};
  });
}

SpAction send_to(NodeId to, std::uint64_t value) {
  SpAction a;
  a.send = SpSend{to, 0, value, 1, {}};
  return a;
}

SpAction poll_from(NodeId src) {
  SpAction a;
  a.poll = src;
  return a;
}

TEST(SinglePort, SameRoundPickupAndFifoOrder) {
  SinglePortEngine engine(2, {});
  std::vector<std::uint64_t> got;
  engine.set_process(0, sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
                       if (ctx.round() <= 2) return send_to(1, 10 + ctx.round());
                       ctx.halt();
                       return SpAction{};
                     }));
  engine.set_process(1, sp_lambda([&](SpContext& ctx, const std::optional<Message>& received) {
                       if (received) got.push_back(received->value);
                       if (ctx.round() >= 6) {
                         ctx.halt();
                         return SpAction{};
                       }
                       return poll_from(0);
                     }));
  const Report report = engine.run();
  EXPECT_TRUE(report.completed);
  // Sends at rounds 0,1,2 carry values 10,11,12 and are polled in FIFO order
  // (pickup possible in the sending round, delivered to the next on_round).
  EXPECT_EQ(got, (std::vector<std::uint64_t>{10, 11, 12}));
}

TEST(SinglePort, OneMessagePerPollEvenIfMoreQueued) {
  SinglePortEngine engine(3, {});
  // Nodes 0 and 1 each send once to node 2 in round 0; node 2 polls port 0
  // twice: gets one message the first time, nothing new from port 0 after.
  engine.set_process(0, sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
                       if (ctx.round() == 0) return send_to(2, 100);
                       ctx.halt();
                       return SpAction{};
                     }));
  engine.set_process(1, sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
                       if (ctx.round() == 0) return send_to(2, 200);
                       ctx.halt();
                       return SpAction{};
                     }));
  std::vector<std::uint64_t> got;
  engine.set_process(2, sp_lambda([&](SpContext& ctx, const std::optional<Message>& received) {
                       if (received) got.push_back(received->value);
                       if (ctx.round() == 0 || ctx.round() == 1) return poll_from(0);
                       if (ctx.round() == 2) return poll_from(1);
                       ctx.halt();
                       return SpAction{};
                     }));
  engine.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{100, 200}));
}

TEST(SinglePort, PollWrongPortGetsNothing) {
  SinglePortEngine engine(3, {});
  engine.set_process(0, sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
                       if (ctx.round() == 0) return send_to(2, 1);
                       ctx.halt();
                       return SpAction{};
                     }));
  engine.set_process(1, sp_idle());
  int received = 0;
  engine.set_process(2, sp_lambda([&](SpContext& ctx, const std::optional<Message>& r) {
                       received += r.has_value() ? 1 : 0;
                       if (ctx.round() >= 3) {
                         ctx.halt();
                         return SpAction{};
                       }
                       return poll_from(1);  // wrong port: 0 sent, not 1
                     }));
  engine.run();
  EXPECT_EQ(received, 0);
}

TEST(SinglePort, CrashedSenderSendIsDropped) {
  SinglePortConfig config;
  config.crash_budget = 1;
  SinglePortEngine engine(2, config);
  engine.set_process(0, sp_lambda([](SpContext&, const std::optional<Message>&) {
                       return send_to(1, 7);
                     }));
  int received = 0;
  engine.set_process(1, sp_lambda([&](SpContext& ctx, const std::optional<Message>& r) {
                       received += r.has_value() ? 1 : 0;
                       if (ctx.round() >= 3) {
                         ctx.halt();
                         return SpAction{};
                       }
                       return poll_from(0);
                     }));

  class CrashZeroAtRoundZero final : public SpAdversary {
   public:
    void on_round(const SpView& view, std::vector<NodeId>& crash_out) override {
      if (view.round() == 0) crash_out.push_back(0);
    }
  };
  engine.set_adversary(std::make_unique<CrashZeroAtRoundZero>());
  const Report report = engine.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(report.metrics.messages_total, 0);
  EXPECT_TRUE(report.nodes[0].crashed);
}

TEST(SinglePort, QueuedMessagesSurviveSenderCrash) {
  // A message already enqueued (sent in an earlier round) remains
  // retrievable after the sender crashes: it was already "delivered to the
  // port" in the paper's model.
  SinglePortConfig config;
  config.crash_budget = 1;
  SinglePortEngine engine(2, config);
  engine.set_process(0, sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
                       if (ctx.round() == 0) return send_to(1, 9);
                       return SpAction{};  // stays alive doing nothing
                     }));
  std::vector<std::uint64_t> got;
  engine.set_process(1, sp_lambda([&](SpContext& ctx, const std::optional<Message>& r) {
                       if (r) got.push_back(r->value);
                       if (ctx.round() >= 4) {
                         ctx.halt();
                         return SpAction{};
                       }
                       if (ctx.round() >= 2) return poll_from(0);  // poll after the crash
                       return SpAction{};
                     }));

  class CrashZeroAtRoundOne final : public SpAdversary {
   public:
    void on_round(const SpView& view, std::vector<NodeId>& crash_out) override {
      if (view.round() == 1) crash_out.push_back(0);
    }
  };
  engine.set_adversary(std::make_unique<CrashZeroAtRoundOne>());
  engine.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{9}));
}

TEST(SinglePort, AdversarySeesActions) {
  // The Theorem 13 adversary must observe where the victim polls/sends.
  SinglePortConfig config;
  config.crash_budget = 2;
  SinglePortEngine engine(3, config);
  engine.set_process(0, sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
                       if (ctx.round() == 0) {
                         SpAction a = send_to(1, 5);
                         a.poll = 2;
                         return a;
                       }
                       ctx.halt();
                       return SpAction{};
                     }));
  engine.set_process(1, sp_idle());
  engine.set_process(2, sp_idle());

  class Observer final : public SpAdversary {
   public:
    explicit Observer(std::vector<NodeId>& log) : log_(&log) {}
    void on_round(const SpView& view, std::vector<NodeId>&) override {
      if (view.round() == 0) {
        const SpAction& a = view.action(0);
        if (a.send) log_->push_back(a.send->to);
        log_->push_back(a.poll);
      }
    }
    std::vector<NodeId>* log_;
  };
  std::vector<NodeId> log;
  engine.set_adversary(std::make_unique<Observer>(log));
  engine.run();
  EXPECT_EQ(log, (std::vector<NodeId>{1, 2}));
}

TEST(SinglePort, MetricsAndDecisions) {
  SinglePortEngine engine(2, {});
  engine.set_process(0, sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
                       if (ctx.round() == 0) {
                         SpAction a;
                         a.send = SpSend{1, 3, 77, 32, {}};
                         return a;
                       }
                       ctx.decide(1);
                       ctx.halt();
                       return SpAction{};
                     }));
  engine.set_process(1, sp_lambda([](SpContext& ctx, const std::optional<Message>& r) {
                       if (r) {
                         ctx.decide(r->value);
                         ctx.halt();
                         return SpAction{};
                       }
                       return poll_from(0);
                     }));
  const Report report = engine.run();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.metrics.messages_total, 1);
  EXPECT_EQ(report.metrics.bits_total, 32);
  EXPECT_TRUE(report.nodes[1].decided);
  EXPECT_EQ(report.nodes[1].decision, 77u);
}

TEST(SinglePort, MaxRoundsCap) {
  SinglePortConfig config;
  config.max_rounds = 4;
  SinglePortEngine engine(1, config);
  engine.set_process(0, sp_lambda([](SpContext&, const std::optional<Message>&) {
                       return SpAction{};  // never halts
                     }));
  const Report report = engine.run();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.rounds, 4);
}

TEST(SinglePort, ByzantineSendsExcludedFromHonestCounters) {
  // mark_byzantine must affect the honest counters exactly as in the
  // multi-port engine: total counts everything, honest excludes the marked
  // node (the Theorem 11 measure must agree between both engine paths).
  SinglePortEngine engine(3, {});
  auto sender = [](NodeId to) {
    return sp_lambda([to](SpContext& ctx, const std::optional<Message>&) {
      if (ctx.round() >= 4) {
        ctx.halt();
        return SpAction{};
      }
      SpAction a;
      a.send = SpSend{to, 0, 1, 8, {}};
      return a;
    });
  };
  engine.set_process(0, sender(2));  // honest
  engine.set_process(1, sender(2));  // Byzantine
  engine.set_process(2, sp_lambda([](SpContext& ctx, const std::optional<Message>&) {
                       if (ctx.round() >= 5) ctx.halt();
                       return poll_from(ctx.round() % 2 == 0 ? 0 : 1);
                     }));
  engine.mark_byzantine(1);
  const Report report = engine.run();
  EXPECT_TRUE(report.nodes[1].byzantine);
  EXPECT_EQ(report.metrics.messages_total, 8);   // 4 sends from each sender
  EXPECT_EQ(report.metrics.messages_honest, 4);  // only node 0's
  EXPECT_EQ(report.metrics.bits_total, 64);
  EXPECT_EQ(report.metrics.bits_honest, 32);
}

}  // namespace
}  // namespace lft::sim
