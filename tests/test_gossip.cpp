// Tests for Gossip (Figure 5, Theorem 9) and Checkpointing (Figure 6,
// Theorem 10), including the extant-set substrate and the growing-bitset
// delta codec the combined messages rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include <memory>
#include <string>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/checkpointing.hpp"
#include "core/extant.hpp"
#include "core/gossip.hpp"
#include "core/growset.hpp"
#include "sim/adversary.hpp"
#include "test_util.hpp"

namespace lft::core {
namespace {

// ---- ExtantSet ----------------------------------------------------------------

TEST(ExtantSet, AddAndQuery) {
  ExtantSet s(10);
  EXPECT_TRUE(s.add(3, 42));
  EXPECT_FALSE(s.add(3, 99));  // first rumor wins
  EXPECT_TRUE(s.contains(3));
  EXPECT_EQ(s.rumor(3), 42u);
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.count(), 1u);
}

TEST(ExtantSet, DeltaRoundTrip) {
  ExtantSet a(20), b(20);
  a.add(1, 10);
  a.add(5, 50);
  ByteWriter w1;
  const std::size_t mark = a.encode_delta(0, w1);
  ByteReader r1(w1.bytes());
  EXPECT_TRUE(b.apply(r1));
  EXPECT_TRUE(a == b);

  a.add(7, 70);
  ByteWriter w2;
  a.encode_delta(mark, w2);
  ByteReader r2(w2.bytes());
  bool changed = false;
  EXPECT_TRUE(b.apply(r2, &changed));
  EXPECT_TRUE(changed);
  EXPECT_TRUE(a == b);
}

TEST(ExtantSet, ApplyRejectsMalformed) {
  ExtantSet s(4);
  ByteWriter w;
  w.put_varint(1);
  w.put_varint(9);  // id out of range
  w.put_u64(0);
  ByteReader r(w.bytes());
  EXPECT_FALSE(s.apply(r));
}

TEST(ExtantSet, DigestSensitiveToContent) {
  ExtantSet a(8), b(8);
  a.add(1, 5);
  b.add(1, 6);
  EXPECT_NE(a.digest(), b.digest());
  ExtantSet c(8);
  c.add(1, 5);
  EXPECT_EQ(a.digest(), c.digest());
}

// ---- GrowingBitset --------------------------------------------------------------

TEST(GrowingBitset, DeltaRoundTrip) {
  GrowingBitset a(100), b(100);
  a.add(3);
  a.add(97);
  ByteWriter w;
  const auto mark = a.encode_delta(0, w);
  ByteReader r(w.bytes());
  EXPECT_TRUE(b.apply(r));
  EXPECT_EQ(a.digest(), b.digest());
  a.add(50);
  ByteWriter w2;
  a.encode_delta(mark, w2);
  ByteReader r2(w2.bytes());
  EXPECT_TRUE(b.apply(r2));
  EXPECT_EQ(b.count(), 3u);
}

TEST(GrowingBitset, MergeBitset) {
  GrowingBitset g(10);
  DynamicBitset d(10);
  d.set(2);
  d.set(9);
  EXPECT_TRUE(g.merge(d));
  EXPECT_FALSE(g.merge(d));
  EXPECT_EQ(g.count(), 2u);
}

// ---- Gossip ------------------------------------------------------------------------

struct GossipCase {
  NodeId n;
  std::int64_t t;
  std::string adversary;
};

std::unique_ptr<sim::FaultInjector> gossip_adversary(const std::string& kind, NodeId n,
                                                      std::int64_t t, std::uint64_t seed) {
  if (kind == "none" || t == 0) return nullptr;
  if (kind == "burst0") return sim::make_scheduled(sim::burst_crash_schedule(n, t, 0, seed));
  if (kind == "random") {
    return sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 4 * t + 20, 0.0, seed));
  }
  if (kind == "partial") {
    return sim::make_scheduled(sim::random_crash_schedule(n, t, 0, 4 * t + 20, 0.6, seed));
  }
  if (kind == "late") {
    return sim::make_scheduled(sim::random_crash_schedule(n, t, 30, 90, 0.0, seed));
  }
  ADD_FAILURE() << "unknown adversary " << kind;
  return nullptr;
}

std::vector<std::uint64_t> make_rumors(NodeId n) {
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rumors[static_cast<std::size_t>(v)] = 1000 + static_cast<std::uint64_t>(v) * 17;
  }
  return rumors;
}

class GossipSweep : public ::testing::TestWithParam<GossipCase> {};

TEST_P(GossipSweep, ConditionsHold) {
  const auto& c = GetParam();
  const auto params = GossipParams::practical(c.n, c.t);
  const auto rumors = make_rumors(c.n);
  const auto outcome =
      run_gossip(params, rumors, gossip_adversary(c.adversary, c.n, c.t, 91));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.condition1);
  EXPECT_TRUE(outcome.condition2);
  EXPECT_TRUE(outcome.rumors_intact);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GossipSweep,
    ::testing::Values(GossipCase{60, 4, "none"}, GossipCase{60, 4, "burst0"},
                      GossipCase{100, 12, "random"}, GossipCase{100, 12, "partial"},
                      GossipCase{200, 30, "random"}, GossipCase{200, 30, "late"},
                      GossipCase{300, 50, "burst0"}, GossipCase{64, 0, "none"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.adversary);
    });

TEST(Gossip, RoundsPolylog) {
  // Theorem 9: O(log n log t) rounds.
  for (NodeId n : {128, 256, 512}) {
    const std::int64_t t = n / 8;
    const auto params = GossipParams::practical(n, t);
    const auto outcome = run_gossip(params, make_rumors(n), nullptr);
    EXPECT_TRUE(outcome.all_good());
    const auto logn = ceil_log2(static_cast<std::uint64_t>(n));
    const auto logt = ceil_log2(static_cast<std::uint64_t>(5 * t));
    EXPECT_LE(outcome.report.rounds, 2 * logn * (logt + 5) + 10) << "n=" << n;
  }
}

TEST(Gossip, MessageShapeNPlusTLogNLogT) {
  // Theorem 9: O(n + t log n log t) messages. Check a structural bound
  // (2 parts x log n phases x little x degree x probe rounds) and that the
  // ratio to the theoretical shape stays flat as n doubles.
  std::vector<double> ratios;
  for (NodeId n : {256, 512, 1024}) {
    const std::int64_t t = n / 10;
    const auto params = GossipParams::practical(n, t);
    const auto outcome = run_gossip(params, make_rumors(n), nullptr);
    EXPECT_TRUE(outcome.all_good());
    const auto logn = static_cast<std::int64_t>(ceil_log2(static_cast<std::uint64_t>(n)));
    const std::int64_t shape =
        static_cast<std::int64_t>(n) + 2 * static_cast<std::int64_t>(params.little_count) *
                                           params.probe_degree * logn *
                                           (params.probe_gamma + 1);
    EXPECT_LE(outcome.report.metrics.messages_total, 2 * shape) << "n=" << n;
    ratios.push_back(static_cast<double>(outcome.report.metrics.messages_total) /
                     static_cast<double>(shape));
  }
  const auto [lo, hi] = std::minmax_element(ratios.begin(), ratios.end());
  EXPECT_LT(*hi / *lo, 1.5) << "messages do not track n + t log n log t";
}

TEST(Gossip, FallbackStaysDormant) {
  const auto params = GossipParams::practical(200, 20);
  const auto outcome = run_gossip(params, make_rumors(200),
                                  gossip_adversary("random", 200, 20, 5));
  EXPECT_TRUE(outcome.all_good());
  EXPECT_EQ(outcome.report.metrics.fallback_pulls, 0);
}

TEST(Gossip, DeterministicAcrossRuns) {
  const auto params = GossipParams::practical(128, 10);
  const auto a = run_gossip(params, make_rumors(128), gossip_adversary("random", 128, 10, 7));
  const auto b = run_gossip(params, make_rumors(128), gossip_adversary("random", 128, 10, 7));
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  EXPECT_EQ(a.report.metrics.messages_total, b.report.metrics.messages_total);
  EXPECT_EQ(a.report.metrics.bits_total, b.report.metrics.bits_total);
}

// ---- Checkpointing --------------------------------------------------------------------

class CheckpointSweep : public ::testing::TestWithParam<GossipCase> {};

TEST_P(CheckpointSweep, ConditionsHold) {
  const auto& c = GetParam();
  const auto params = CheckpointParams::practical(c.n, c.t);
  const auto outcome =
      run_checkpointing(params, gossip_adversary(c.adversary, c.n, c.t, 103));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.condition1) << "crashed-silent node appears in a decided set";
  EXPECT_TRUE(outcome.condition2) << "operational node missing from a decided set";
  EXPECT_TRUE(outcome.condition3) << "decided extant sets differ";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CheckpointSweep,
    ::testing::Values(GossipCase{60, 4, "none"}, GossipCase{60, 4, "burst0"},
                      GossipCase{100, 12, "random"}, GossipCase{100, 12, "partial"},
                      GossipCase{200, 30, "random"}, GossipCase{200, 30, "late"},
                      GossipCase{64, 0, "none"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.adversary);
    });

TEST(Checkpointing, RoundsLinearPlusPolylog) {
  // Theorem 10: O(t + log n log t) rounds.
  for (NodeId n : {128, 256}) {
    const std::int64_t t = n / 8;
    const auto params = CheckpointParams::practical(n, t);
    const auto outcome = run_checkpointing(params, nullptr);
    EXPECT_TRUE(outcome.all_good());
    const auto logn = ceil_log2(static_cast<std::uint64_t>(n));
    const auto logt = ceil_log2(static_cast<std::uint64_t>(5 * t));
    EXPECT_LE(outcome.report.rounds,
              5 * t + 2 * logn * (logt + 5) + 14 * logn + 40)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace lft::core
