// Tests for the single-port adaptation (Section 8): the generic stage
// adapter, Linear-Consensus invariants under crash adversaries, the
// Theorem 12 performance shape, and the Theorem 13 lower-bound experiments.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/params.hpp"
#include "sim/adversary.hpp"
#include "singleport/linear_consensus.hpp"
#include "singleport/lower_bound.hpp"
#include "test_util.hpp"

namespace lft::singleport {
namespace {

std::vector<int> make_inputs(NodeId n, const std::string& pattern, std::uint64_t seed) {
  std::vector<int> inputs(static_cast<std::size_t>(n), 0);
  if (pattern == "all1") {
    std::fill(inputs.begin(), inputs.end(), 1);
  } else if (pattern == "one1") {
    inputs[static_cast<std::size_t>(n / 2)] = 1;
  } else if (pattern == "random") {
    Rng rng(seed);
    for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));
  }
  return inputs;
}

std::unique_ptr<sim::SpAdversary> sp_adversary(const std::string& kind, NodeId n,
                                               std::int64_t t, Round window,
                                               std::uint64_t seed) {
  if (kind == "none" || t == 0) return nullptr;
  if (kind == "burst0") {
    return std::make_unique<ScheduledSpAdversary>(sim::burst_crash_schedule(n, t, 0, seed));
  }
  if (kind == "random") {
    return std::make_unique<ScheduledSpAdversary>(
        sim::random_crash_schedule(n, t, 0, window, 0.0, seed));
  }
  ADD_FAILURE() << "unknown adversary " << kind;
  return nullptr;
}

struct LinearCase {
  NodeId n;
  std::int64_t t;
  std::string pattern;
  std::string adversary;
};

class LinearSweep : public ::testing::TestWithParam<LinearCase> {};

TEST_P(LinearSweep, SolvesConsensusSinglePort) {
  const auto& c = GetParam();
  const auto params = core::ConsensusParams::single_port(c.n, c.t);
  const auto inputs = make_inputs(c.n, c.pattern, 47);
  // Crash window sized to the sp-round expansion of the flooding part.
  const Round window = 40 * std::max<Round>(1, c.t);
  const auto outcome = run_linear_consensus(
      params, inputs, sp_adversary(c.adversary, c.n, c.t, window, 53));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LinearSweep,
    ::testing::Values(LinearCase{60, 0, "random", "none"},
                      LinearCase{60, 5, "all0", "burst0"},
                      LinearCase{60, 5, "all1", "random"},
                      LinearCase{100, 12, "random", "burst0"},   // t >= sqrt(n): star kept
                      LinearCase{100, 12, "half", "random"},
                      LinearCase{256, 9, "random", "random"},    // t < sqrt(n): star skipped
                      LinearCase{256, 31, "one1", "burst0"},
                      LinearCase{400, 60, "random", "random"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.pattern, "_", c.adversary);
    });

TEST(LinearConsensus, DeterministicAcrossRuns) {
  const auto params = core::ConsensusParams::single_port(100, 10);
  const auto inputs = make_inputs(100, "random", 3);
  const auto a = run_linear_consensus(
      params, inputs,
      std::make_unique<ScheduledSpAdversary>(
          sim::random_crash_schedule(100, 10, 0, 200, 0.0, 5)));
  const auto b = run_linear_consensus(
      params, inputs,
      std::make_unique<ScheduledSpAdversary>(
          sim::random_crash_schedule(100, 10, 0, 200, 0.0, 5)));
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  EXPECT_EQ(a.report.metrics.messages_total, b.report.metrics.messages_total);
  EXPECT_EQ(a.decision, b.decision);
}

TEST(LinearConsensus, SinglePortConstraintRespected) {
  // The engine enforces one send + one poll per node per round by
  // construction; verify the expansion factors: sp rounds >= mp rounds and
  // messages match the multi-port shape (same protocol, same sends).
  const auto params = core::ConsensusParams::single_port(80, 10);
  const auto inputs = make_inputs(80, "random", 11);
  const auto outcome = run_linear_consensus(params, inputs, nullptr);
  EXPECT_TRUE(outcome.all_good());
  // Every message costs its sender one round slot, so messages <= rounds * n.
  EXPECT_LE(outcome.report.metrics.messages_total,
            outcome.report.rounds * static_cast<Round>(80));
}

TEST(LinearConsensus, RoundShapeLinearPlusLog) {
  // Theorem 12: O(t + log n) rounds. With constant-degree overlays each
  // mp-round costs O(1) sp-rounds, so sp-rounds stay within a constant
  // factor of c1*t + c2*log n.
  std::vector<double> ratios;
  for (std::int64_t t : {8, 16, 32, 64}) {
    const NodeId n = static_cast<NodeId>(8 * t);
    const auto params = core::ConsensusParams::single_port(n, t);
    const auto inputs = make_inputs(n, "random", 3);
    const auto outcome = run_linear_consensus(params, inputs, nullptr);
    EXPECT_TRUE(outcome.all_good());
    const double shape = static_cast<double>(t) +
                         static_cast<double>(ceil_log2(static_cast<std::uint64_t>(n)));
    ratios.push_back(static_cast<double>(outcome.report.rounds) / shape);
  }
  const auto [lo, hi] = std::minmax_element(ratios.begin(), ratios.end());
  EXPECT_LT(*hi / *lo, 1.8) << "sp-rounds do not track t + log n";
}

TEST(LinearConsensus, BitsNearLinear) {
  // Theorem 12: O(n + t log n) bits.
  for (NodeId n : {128, 256, 512}) {
    const std::int64_t t = n / 8;
    const auto params = core::ConsensusParams::single_port(n, t);
    const auto inputs = make_inputs(n, "random", 7);
    const auto outcome = run_linear_consensus(params, inputs, nullptr);
    EXPECT_TRUE(outcome.all_good());
    const std::int64_t logn = ceil_log2(static_cast<std::uint64_t>(n));
    const std::int64_t bound =
        4 * (static_cast<std::int64_t>(n) +
             static_cast<std::int64_t>(params.little_count) * params.probe_degree_little *
                 (params.probe_gamma_little + 1) +
             t * logn);
    EXPECT_LE(outcome.report.metrics.bits_total, bound) << "n=" << n;
  }
}

// ---- Theorem 13 ------------------------------------------------------------------

TEST(LowerBound, PortIsolationBuysTOverTwoSilentRounds) {
  const IsolationResult result = run_port_isolation(64, 12, 40);
  EXPECT_GE(result.isolation_rounds, 6);  // >= t/2
  EXPECT_LE(result.crashes_used, 12);
}

TEST(LowerBound, PortIsolationScalesWithBudget) {
  const IsolationResult small = run_port_isolation(64, 4, 40);
  const IsolationResult large = run_port_isolation(64, 12, 40);
  EXPECT_GE(large.isolation_rounds, small.isolation_rounds);
}

TEST(LowerBound, DivergenceGrowsAtMostTriply) {
  const DivergenceResult result = run_divergence_experiment(128, 8);
  ASSERT_FALSE(result.diverged_per_round.empty());
  // |A[0]| <= 1 (only the seed node differs at the start).
  EXPECT_LE(result.diverged_per_round.front(), 1);
  // |A[i]| <= 3^(i+1), and in particular full divergence needs >= log_3 n
  // rounds, which lower-bounds any differing-decision consensus run.
  std::int64_t cap = 3;
  Round full_at = -1;
  for (std::size_t i = 0; i < result.diverged_per_round.size(); ++i) {
    EXPECT_LE(result.diverged_per_round[i], cap) << "round " << i;
    if (cap <= (std::int64_t{1} << 40)) cap *= 3;
    if (full_at < 0 && result.diverged_per_round[i] >= 128) {
      full_at = static_cast<Round>(i);
    }
  }
  EXPECT_TRUE(result.decisions_differ);
  if (full_at >= 0) {
    EXPECT_GE(full_at, 4);  // log_3(128) ~ 4.4
  }
}

TEST(LowerBound, DivergenceMonotone) {
  const DivergenceResult result = run_divergence_experiment(64, 4);
  for (std::size_t i = 1; i < result.diverged_per_round.size(); ++i) {
    EXPECT_GE(result.diverged_per_round[i], result.diverged_per_round[i - 1]);
  }
}

}  // namespace
}  // namespace lft::singleport

// ---- Single-port gossip (Table 1 gossip row, single-port column) -----------------

#include "singleport/gossip_sp.hpp"

namespace lft::singleport {
namespace {

std::vector<std::uint64_t> sp_rumors(NodeId n) {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = 500 + v;
  return out;
}

TEST(SinglePortGossip, ConditionsHoldWithoutCrashes) {
  const auto params = core::GossipParams::practical(100, 8);
  const auto outcome = run_single_port_gossip(params, sp_rumors(100), nullptr);
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.condition1);
  EXPECT_TRUE(outcome.condition2);
  EXPECT_TRUE(outcome.rumors_intact);
  EXPECT_EQ(outcome.report.metrics.fallback_pulls, 0);
}

TEST(SinglePortGossip, ConditionsHoldUnderCrashes) {
  const NodeId n = 150;
  const std::int64_t t = 15;
  const auto params = core::GossipParams::practical(n, t);
  auto adversary = std::make_unique<ScheduledSpAdversary>(
      sim::random_crash_schedule(n, t, 0, 60 * t, 0.0, 19));
  const auto outcome = run_single_port_gossip(params, sp_rumors(n), std::move(adversary));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.condition1);
  EXPECT_TRUE(outcome.condition2);
  EXPECT_TRUE(outcome.rumors_intact);
}

TEST(SinglePortGossip, RoundExpansionStaysConstantFactor) {
  // sp-rounds = sum over mp-rounds of (out+in slots): with constant-degree
  // overlays this is a constant factor over the multi-port O(log n log t).
  const NodeId n = 200;
  const std::int64_t t = 20;
  const auto params = core::GossipParams::practical(n, t);
  const auto mp = core::run_gossip(params, sp_rumors(n), nullptr);
  const auto sp = run_single_port_gossip(params, sp_rumors(n), nullptr);
  EXPECT_TRUE(sp.all_good());
  EXPECT_LT(sp.report.rounds, 80 * mp.report.rounds)
      << "slot expansion should be bounded by ~2x the largest overlay degree";
}

}  // namespace
}  // namespace lft::singleport
