// The forensics plane: trace capture determinism (serial vs. parallel
// stepper, scratch adoption, zero-length payloads), trace codec round-trips
// and malformed-input rejection, replay divergence localization (a single
// flipped fault event must pinpoint its exact round and digest component),
// and fault-plan shrinking (a 12-event violating plan must reduce to its
// known 3-event core, bit-identically across steppers).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "forensics/replay.hpp"
#include "forensics/shrink.hpp"
#include "forensics/trace.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace lft {
namespace {

using forensics::Component;
using forensics::Trace;
using forensics::TraceRecorder;
using sim::RoundDigest;

// ---- trace capture ---------------------------------------------------------

/// n-node fanout workload with optional bodies; returns the trace.
Trace traced_fanout(NodeId n, Round rounds, int threads, std::size_t body_bytes,
                    sim::EngineScratch* scratch = nullptr, bool empty_view_body = false) {
  TraceRecorder recorder;
  sim::EngineConfig config;
  config.threads = threads;
  config.scratch = scratch;
  config.trace = &recorder;
  sim::Engine engine(n, config);
  const std::vector<std::byte> body(body_bytes, std::byte{0x7E});
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, test::lambda_process([n, rounds, &body, empty_view_body](
                                                   sim::Context& ctx, const sim::Inbox&) {
      if (ctx.round() >= rounds) {
        ctx.halt();
        return;
      }
      for (NodeId to = 0; to < n; ++to) {
        if (empty_view_body) {
          // A zero-length view of a *valid* pointer: must behave exactly
          // like the default empty PayloadView end-to-end.
          ctx.send(to, 1, 7, 1, sim::PayloadView(body.data(), 0));
        } else if (body.empty()) {
          ctx.send(to, 1, 7, 1);
        } else {
          ctx.send(to, 1, 7, 1 + body.size() * 8, body);
        }
      }
    }));
  }
  const sim::Report report = engine.run();
  Trace trace = recorder.take();
  trace.report_fingerprint = scenarios::fingerprint(report);
  return trace;
}

TEST(TraceCapture, RecordsEveryRoundWithConsistentCounts) {
  const Trace trace = traced_fanout(8, 3, 1, 0);
  ASSERT_EQ(trace.rounds.size(), 4u);  // 3 sending rounds + the halt round
  for (std::size_t r = 0; r < trace.rounds.size(); ++r) {
    const RoundDigest& d = trace.rounds[r];
    EXPECT_EQ(d.round, static_cast<Round>(r));
    EXPECT_EQ(d.sent, r < 3 ? 64u : 0u);
    EXPECT_EQ(d.sent, d.delivered + d.lost_crash + d.lost_fault + d.lost_dead);
  }
  // Fault-free run: nothing lost, no fault actions.
  for (const RoundDigest& d : trace.rounds) {
    EXPECT_EQ(d.lost_crash + d.lost_fault + d.lost_dead, 0u);
    EXPECT_EQ(d.crashes + d.omissions + d.links + d.partitions + d.takeovers, 0u);
  }
}

TEST(TraceCapture, DigestsAreThreadAndScratchInvariant) {
  // n >= 256 engages the parallel stepper; digests must not change.
  const Trace serial = traced_fanout(300, 4, 1, 24);
  const Trace parallel = traced_fanout(300, 4, 4, 24);
  EXPECT_FALSE(forensics::diff(serial, parallel).diverged);

  sim::EngineScratch scratch;
  const Trace warm1 = traced_fanout(64, 3, 1, 24, &scratch);
  const Trace warm2 = traced_fanout(64, 3, 1, 24, &scratch);  // recycled buffers
  const Trace cold = traced_fanout(64, 3, 1, 24);
  EXPECT_FALSE(forensics::diff(cold, warm1).diverged);
  EXPECT_FALSE(forensics::diff(cold, warm2).diverged);
}

TEST(TraceCapture, BodyContentReachesTheDigest) {
  const Trace a = traced_fanout(8, 2, 1, 16);
  Trace b = traced_fanout(8, 2, 1, 16);
  EXPECT_FALSE(forensics::diff(a, b).diverged);
  // A different body size (hence content) must surface as a divergence in
  // the send round's bodies component (headers include body_len, so the
  // payload component — compared first — flags it too; assert it diverges
  // and names round 0).
  const Trace c = traced_fanout(8, 2, 1, 17);
  const auto d = forensics::diff(a, c);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.round, 0);
}

TEST(TraceCapture, ZeroLengthPayloadViewMatchesNoBodyEndToEnd) {
  // send(empty view of a real pointer) == send(no body): same Report
  // fingerprint, same digests, and the message flows through the radix
  // sweep into the inbox with has_body() == false.
  const Trace none = traced_fanout(12, 3, 1, 0);
  const Trace empty_view = traced_fanout(12, 3, 1, 0, nullptr, /*empty_view_body=*/true);
  EXPECT_FALSE(forensics::diff(none, empty_view).diverged);
  EXPECT_EQ(none.report_fingerprint, empty_view.report_fingerprint);
  for (const RoundDigest& d : empty_view.rounds) EXPECT_EQ(d.body_hash, 0u);

  // Inbox-side check: the delivered message carries no body.
  sim::Engine engine(2, {});
  const std::byte anchor[4] = {};
  engine.set_process(0, test::lambda_process([&anchor](sim::Context& ctx, const sim::Inbox&) {
    if (ctx.round() == 0) {
      ctx.send(1, 9, 42, 1, sim::PayloadView(anchor, 0));
    } else {
      ctx.halt();
    }
  }));
  engine.set_process(1, test::lambda_process([](sim::Context& ctx, const sim::Inbox& inbox) {
    if (ctx.round() == 1) {
      ASSERT_EQ(inbox.size(), 1u);
      const sim::Message& m = *inbox.begin();
      EXPECT_FALSE(m.has_body());
      EXPECT_EQ(m.body().size(), 0u);
      EXPECT_EQ(m.value, 42u);
    }
    if (ctx.round() >= 1) ctx.halt();
  }));
  (void)engine.run();
}

// ---- codec -----------------------------------------------------------------

Trace make_trace(std::size_t rounds) {
  Trace trace;
  trace.meta.scenario = "codec_case";
  trace.meta.seed = 77;
  trace.meta.n = 96;
  trace.meta.t = 13;
  trace.meta.threads = 2;
  trace.report_fingerprint = 0xfeedfacecafebeefULL;
  for (std::size_t r = 0; r < rounds; ++r) {
    RoundDigest d;
    d.round = static_cast<Round>(r);
    d.sent = 1000 + r;
    d.delivered = 900 + r;
    d.lost_crash = 60;
    d.lost_fault = 30 + r;
    d.lost_dead = 10;
    d.delayed = 70 + r;  // codec v2 field: parked-message count
    d.crashes = static_cast<std::uint32_t>(r % 5);
    d.omissions = 2;
    d.links = 1;
    d.partitions = r == 0 ? 1 : 0;
    d.takeovers = 3;
    d.delays = r == 1 ? 2 : 0;  // codec v2 field: delay-rule/GST actions
    d.active_hash = 0x1111111111111111ULL * (r + 1);
    d.payload_hash = 0x2222222222222222ULL ^ (r << 7);
    d.body_hash = 0x3333333333333333ULL + r;
    trace.rounds.push_back(d);
  }
  return trace;
}

TEST(TraceCodec, RoundTripsEmptySingleAndManyRoundTraces) {
  for (const std::size_t rounds : {std::size_t{0}, std::size_t{1}, std::size_t{5000}}) {
    const Trace trace = make_trace(rounds);
    const auto bytes = forensics::encode_trace(trace);
    const auto decoded = forensics::decode_trace(bytes);
    ASSERT_TRUE(decoded.has_value()) << rounds << " rounds";
    EXPECT_TRUE(*decoded == trace) << rounds << " rounds";
  }
}

TEST(TraceCodec, RoundTripsARealRecordingThroughAFile) {
  // A recorded trace whose bodies spanned multiple arena chunks (payload >
  // one 64 KiB chunk per round) must survive the file round-trip bit-exactly.
  Trace trace = traced_fanout(24, 4, 1, 3000);  // 24*24*3000B ~ 1.7 MB/round
  trace.meta.scenario = "fanout_bodies";
  trace.meta.seed = 5;
  trace.meta.n = 24;
  const std::string path = ::testing::TempDir() + "lft_forensics_roundtrip.trace";
  ASSERT_TRUE(forensics::save_trace(trace, path));
  const auto loaded = forensics::load_trace(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(*loaded == trace);
  std::remove(path.c_str());
}

TEST(TraceCodec, RejectsMalformedInput) {
  const Trace trace = make_trace(3);
  auto bytes = forensics::encode_trace(trace);

  // Truncations at every prefix length must fail softly, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        forensics::decode_trace(std::span<const std::byte>(bytes.data(), cut)).has_value())
        << "prefix " << cut;
  }
  // Trailing garbage is malformed.
  auto padded = bytes;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(forensics::decode_trace(padded).has_value());
  // Bad magic / unsupported version.
  auto wrong = bytes;
  wrong[0] = std::byte{0xAA};
  EXPECT_FALSE(forensics::decode_trace(wrong).has_value());
  auto version = bytes;
  version[8] = std::byte{0xFF};
  EXPECT_FALSE(forensics::decode_trace(version).has_value());
  // A future version (v3) must be rejected, not half-decoded.
  auto future = bytes;
  future[8] = std::byte{3};
  EXPECT_FALSE(forensics::decode_trace(future).has_value());
}

TEST(TraceCodec, DecodesVersionOneTracesWithZeroTimingFields) {
  // A hand-built v1 frame (pre-timing-faults layout: 11 varints + 3 hashes
  // per digest, no `delayed` / `delays`) must still decode, with both v2
  // fields defaulting to zero — archived repro traces stay loadable.
  const Trace expected = [] {
    Trace t = make_trace(3);
    for (auto& d : t.rounds) {
      d.delayed = 0;
      d.delays = 0;
    }
    return t;
  }();
  ByteWriter w;
  w.put_u64(0x4543415254544c46ULL);  // "LFTTRACE"
  w.put_u32(1);                      // version 1
  w.put_varint(expected.meta.scenario.size());
  w.put_bytes(std::as_bytes(std::span<const char>(expected.meta.scenario.data(),
                                                  expected.meta.scenario.size())));
  w.put_u64(expected.meta.seed);
  w.put_u32(static_cast<std::uint32_t>(expected.meta.n));
  w.put_varint(static_cast<std::uint64_t>(expected.meta.t));
  w.put_u32(static_cast<std::uint32_t>(expected.meta.threads));
  w.put_u64(expected.report_fingerprint);
  w.put_varint(expected.rounds.size());
  for (const RoundDigest& d : expected.rounds) {
    w.put_varint(static_cast<std::uint64_t>(d.round));
    w.put_varint(d.sent);
    w.put_varint(d.delivered);
    w.put_varint(d.lost_crash);
    w.put_varint(d.lost_fault);
    w.put_varint(d.lost_dead);
    w.put_varint(d.crashes);
    w.put_varint(d.omissions);
    w.put_varint(d.links);
    w.put_varint(d.partitions);
    w.put_varint(d.takeovers);
    w.put_u64(d.active_hash);
    w.put_u64(d.payload_hash);
    w.put_u64(d.body_hash);
  }
  const auto decoded = forensics::decode_trace(w.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == expected);
  for (const RoundDigest& d : decoded->rounds) {
    EXPECT_EQ(d.delayed, 0u);
    EXPECT_EQ(d.delays, 0u);
  }
  // Re-encoding always emits the current version, so the byte frames differ
  // while the decoded traces compare equal.
  EXPECT_NE(forensics::encode_trace(*decoded), std::vector<std::byte>(w.view().begin(),
                                                                      w.view().end()));
}

// ---- replay + divergence localization --------------------------------------

TEST(Replay, CleanReplayReportsNoDivergence) {
  const auto* scenario = scenarios::find_scenario("crash_staggered_drip");
  ASSERT_NE(scenario, nullptr);
  const auto recorded = forensics::record(*scenario, 11, 1);
  EXPECT_TRUE(recorded.result.ok);
  const auto replayed = forensics::replay(recorded.trace, 1);
  EXPECT_FALSE(replayed.divergence.diverged) << replayed.divergence.detail;
  EXPECT_EQ(replayed.trace.report_fingerprint, recorded.trace.report_fingerprint);
  // The trace re-executes identically through the parallel stepper too.
  const auto parallel = forensics::replay(recorded.trace, 4);
  EXPECT_FALSE(parallel.divergence.diverged) << parallel.divergence.detail;
}

TEST(Replay, FlippedCrashEventPinpointsRoundAndComponent) {
  const auto* scenario = scenarios::find_scenario("crash_staggered_drip");
  ASSERT_NE(scenario, nullptr);
  ASSERT_NE(scenario->plan_of, nullptr);
  const std::uint64_t seed = 11;
  const auto recorded = forensics::record(*scenario, seed, 1);

  // Flip one fault event: delay the first planned crash by one round.
  sim::FaultPlan perturbed = scenario->plan_of(seed, scenario->n, scenario->t);
  ASSERT_FALSE(perturbed.crashes.empty());
  Round flip_round = perturbed.crashes[0].round;
  for (const auto& e : perturbed.crashes) {
    if (e.round < flip_round) flip_round = e.round;  // perturb the earliest
  }
  for (auto& e : perturbed.crashes) {
    if (e.round == flip_round) {
      e.round += 1;
      break;
    }
  }
  const auto replayed = forensics::replay_plan(*scenario, recorded.trace,
                                               std::move(perturbed), /*threads=*/1);
  ASSERT_TRUE(replayed.divergence.diverged);
  // The first observable difference is the missing crash action in the
  // flipped event's original round.
  EXPECT_EQ(replayed.divergence.round, flip_round);
  EXPECT_EQ(replayed.divergence.component, Component::kFaultActions);
  EXPECT_NE(replayed.divergence.detail.find("fault_actions"), std::string::npos);
}

TEST(Replay, FlippedOmissionWindowPinpointsItsOpeningRound) {
  const auto* scenario = scenarios::find_scenario("omission_send_quorum");
  ASSERT_NE(scenario, nullptr);
  const std::uint64_t seed = 4;
  const auto recorded = forensics::record(*scenario, seed, 1);

  sim::FaultPlan perturbed = scenario->plan_of(seed, scenario->n, scenario->t);
  ASSERT_FALSE(perturbed.omissions.empty());
  const Round open_round = perturbed.omissions[0].from;
  perturbed.omissions[0].from = open_round + 2;  // open the window late
  const auto replayed = forensics::replay_plan(*scenario, recorded.trace,
                                               std::move(perturbed), /*threads=*/1);
  ASSERT_TRUE(replayed.divergence.diverged);
  EXPECT_EQ(replayed.divergence.round, open_round);
  EXPECT_EQ(replayed.divergence.component, Component::kFaultActions);
}

TEST(Replay, FlippedDelayWindowPinpointsItsInstallRound) {
  // Timing faults are replayable like every other class: opening the delay
  // window one round late must surface as a missing delay-rule install
  // action in the window's original opening round.
  const auto* scenario = scenarios::find_scenario("delay_burst_window");
  ASSERT_NE(scenario, nullptr);
  ASSERT_NE(scenario->plan_of, nullptr);
  const std::uint64_t seed = 7;
  const auto recorded = forensics::record(*scenario, seed, 1);
  EXPECT_TRUE(recorded.result.ok);
  // The window parks real traffic (otherwise this test checks nothing).
  std::uint64_t parked = 0;
  for (const RoundDigest& d : recorded.trace.rounds) parked += d.delayed;
  EXPECT_GT(parked, 0u);

  sim::FaultPlan perturbed = scenario->plan_of(seed, scenario->n, scenario->t);
  ASSERT_FALSE(perturbed.delays.empty());
  const Round open_round = perturbed.delays[0].from;
  perturbed.delays[0].from = open_round + 1;  // open the window late
  const auto replayed = forensics::replay_plan(*scenario, recorded.trace,
                                               std::move(perturbed), /*threads=*/1);
  ASSERT_TRUE(replayed.divergence.diverged);
  EXPECT_EQ(replayed.divergence.round, open_round);
  EXPECT_EQ(replayed.divergence.component, Component::kFaultActions);
  EXPECT_NE(replayed.divergence.detail.find("delays"), std::string::npos)
      << replayed.divergence.detail;
}

TEST(Replay, DiffOrdersComponentsAndCatchesLengthAndFingerprint) {
  const Trace base = make_trace(3);

  Trace longer = base;
  longer.rounds.push_back(longer.rounds.back());
  longer.rounds.back().round = 3;
  auto d = forensics::diff(base, longer);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.component, Component::kRoundCount);
  EXPECT_EQ(d.round, 3);

  Trace fp = base;
  fp.report_fingerprint ^= 1;
  d = forensics::diff(base, fp);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.component, Component::kFingerprint);

  // Within a round, fault actions outrank message fates, which outrank the
  // hashes (pipeline order).
  Trace multi = base;
  multi.rounds[1].crashes += 1;
  multi.rounds[1].delivered += 5;
  multi.rounds[1].payload_hash ^= 3;
  d = forensics::diff(base, multi);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.round, 1);
  EXPECT_EQ(d.component, Component::kFaultActions);

  Trace hashes = base;
  hashes.rounds[2].body_hash ^= 9;
  d = forensics::diff(base, hashes);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.round, 2);
  EXPECT_EQ(d.component, Component::kBodies);
}

// ---- shrinking -------------------------------------------------------------

TEST(Shrink, CoordinatorCollapseReducesTwelveEventsToThree) {
  const auto* shrink_case = forensics::find_shrink_case("coordinator_collapse");
  ASSERT_NE(shrink_case, nullptr);
  const auto problem = shrink_case->make(1);
  ASSERT_GE(forensics::plan_event_count(problem.plan), 12);

  forensics::ShrinkOptions options;
  options.workers = 4;
  const auto result = forensics::shrink(problem, options);

  EXPECT_TRUE(result.violating);
  EXPECT_EQ(result.final_events, 3);
  ASSERT_EQ(result.plan.crashes.size(), 3u);
  // The known minimal core: the three coordinators, silenced at round 0.
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(result.plan.crashes[static_cast<std::size_t>(v)].node, v);
    EXPECT_EQ(result.plan.crashes[static_cast<std::size_t>(v)].round, 0);
  }
  // Size shrinking kicked in and the repro still violates there.
  EXPECT_LT(result.n, problem.n);
  EXPECT_GE(result.n, options.min_n);
  // The acceptance bar: the minimal repro's trace is bit-identical across
  // serial and parallel stepping.
  EXPECT_FALSE(result.parallel_divergence.diverged) << result.parallel_divergence.detail;
  EXPECT_FALSE(result.trace.rounds.empty());
}

TEST(Shrink, CoordinatorBlackoutNarrowsWindowsToTheBroadcastRounds) {
  const auto* shrink_case = forensics::find_shrink_case("coordinator_blackout");
  ASSERT_NE(shrink_case, nullptr);
  const auto problem = shrink_case->make(1);
  ASSERT_GE(forensics::plan_event_count(problem.plan), 12);

  const auto result = forensics::shrink(problem, forensics::ShrinkOptions{});
  EXPECT_TRUE(result.violating);
  ASSERT_EQ(result.plan.omissions.size(), 3u);
  for (const auto& e : result.plan.omissions) {
    // Window narrowing reduced each 24-round blackout to exactly the one
    // round in which its victim is the broadcasting coordinator.
    EXPECT_EQ(e.until - e.from, 1) << "node " << e.node;
    EXPECT_EQ(e.from, static_cast<Round>(e.node)) << "node " << e.node;
  }
  EXPECT_FALSE(result.parallel_divergence.diverged);
}

TEST(Shrink, CoordinatorLagReducesTenDelaysToOneWindow) {
  // The timing-fault ddmin demo: 9 decoy per-source delay rules plus one
  // all-links window that lags every coordinator broadcast past the decide
  // round. Event ddmin must strip all 9 decoys, leaving the single window.
  const auto* shrink_case = forensics::find_shrink_case("coordinator_lag");
  ASSERT_NE(shrink_case, nullptr);
  const auto problem = shrink_case->make(1);
  ASSERT_EQ(forensics::plan_event_count(problem.plan), 10);

  forensics::ShrinkOptions options;
  options.workers = 4;
  const auto result = forensics::shrink(problem, options);

  EXPECT_TRUE(result.violating);
  EXPECT_EQ(result.final_events, 1);
  ASSERT_EQ(result.plan.delays.size(), 1u);
  const auto& e = result.plan.delays[0];
  // The surviving event is the all-links window with its 6-round lag; the
  // decoy 1-round per-source rules are gone.
  EXPECT_EQ(e.src, kNoNode);
  EXPECT_EQ(e.dst, kNoNode);
  EXPECT_EQ(e.min_delay, 6);
  EXPECT_EQ(e.max_delay, 6);
  // Window narrowing never widens the original [0, 8) window, and the salt
  // excludes the window bounds, so narrowing is coin-stable.
  EXPECT_LE(e.until - e.from, 8);
  // Size shrinking engaged and the minimal repro holds the determinism bar.
  EXPECT_LT(result.n, problem.n);
  EXPECT_FALSE(result.parallel_divergence.diverged) << result.parallel_divergence.detail;
  EXPECT_FALSE(result.trace.rounds.empty());
  // Delayed traffic shows up in the minimal repro's own trace.
  std::uint64_t parked = 0;
  for (const RoundDigest& d : result.trace.rounds) parked += d.delayed;
  EXPECT_GT(parked, 0u);
}

TEST(Shrink, IsDeterministicAcrossWorkerCounts) {
  const auto* shrink_case = forensics::find_shrink_case("coordinator_collapse");
  ASSERT_NE(shrink_case, nullptr);
  forensics::ShrinkOptions one;
  one.workers = 1;
  forensics::ShrinkOptions eight;
  eight.workers = 8;
  const auto a = forensics::shrink(shrink_case->make(3), one);
  const auto b = forensics::shrink(shrink_case->make(3), eight);
  EXPECT_EQ(a.final_events, b.final_events);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.trace.report_fingerprint, b.trace.report_fingerprint);
}

TEST(Shrink, NonViolatingPlanReturnsImmediately) {
  const auto* scenario = scenarios::find_scenario("crash_burst_flood");
  ASSERT_NE(scenario, nullptr);
  ASSERT_NE(scenario->run_plan, nullptr);
  // The registered plan satisfies the scenario invariant, so there is no
  // counterexample to minimize.
  auto problem = forensics::scenario_problem(
      *scenario, scenario->plan_of(1, 96, 16), 1, /*n=*/96, /*t=*/16);
  const auto result = forensics::shrink(problem, forensics::ShrinkOptions{});
  EXPECT_FALSE(result.violating);
  EXPECT_EQ(result.final_events, result.initial_events);
  EXPECT_EQ(result.evaluations, 1);
}

// ---- registry plan/runner split --------------------------------------------

TEST(ScenarioPlans, PlanDrivenScenariosComposeBackToRunAt) {
  // For every plan-driven scenario, run_plan(plan_of(...)) must reproduce
  // run_at bit-for-bit (they are the same execution by construction).
  for (const auto& s : scenarios::all_scenarios()) {
    if (s.run_plan == nullptr) continue;
    ASSERT_NE(s.plan_of, nullptr) << s.name;
    // Scaled-down shapes keep the sweep fast.
    const NodeId n = std::max<NodeId>(48, s.n / 4);
    const std::int64_t t = s.scaled_t(n);
    const auto direct = s.run_at(9, n, t, {});
    const auto composed = s.run_plan(9, n, t, s.plan_of(9, n, t), {});
    EXPECT_EQ(scenarios::fingerprint(direct.report),
              scenarios::fingerprint(composed.report))
        << s.name;
  }
}

}  // namespace
}  // namespace lft
