// Shared helpers for the test suite. `case_name` builds parameterized test
// names by appending pieces with += — gcc 12 at -O3 flags the equivalent
// std::string operator+ chains with a spurious -Wrestrict (GCC PR105329),
// which -Werror turns fatal. `LambdaProcess` scripts an engine node with a
// per-round lambda.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include <optional>

#include "sim/engine.hpp"
#include "sim/single_port.hpp"

namespace lft::test {

/// Scriptable multi-port process: runs a user lambda each round.
class LambdaProcess final : public sim::Process {
 public:
  using Fn = std::function<void(sim::Context&, const sim::Inbox&)>;
  explicit LambdaProcess(Fn fn) : fn_(std::move(fn)) {}
  void on_round(sim::Context& ctx, const sim::Inbox& inbox) override { fn_(ctx, inbox); }

 private:
  Fn fn_;
};

inline std::unique_ptr<sim::Process> lambda_process(LambdaProcess::Fn fn) {
  return std::make_unique<LambdaProcess>(std::move(fn));
}

/// Does nothing and halts immediately.
inline std::unique_ptr<sim::Process> idle_process() {
  return lambda_process([](sim::Context& ctx, const sim::Inbox&) { ctx.halt(); });
}

/// Scriptable single-port process: runs a user lambda each round.
class SpLambdaProcess final : public sim::SinglePortProcess {
 public:
  using Fn =
      std::function<sim::SpAction(sim::SpContext&, const std::optional<sim::Message>&)>;
  explicit SpLambdaProcess(Fn fn) : fn_(std::move(fn)) {}
  sim::SpAction on_round(sim::SpContext& ctx,
                         const std::optional<sim::Message>& received) override {
    return fn_(ctx, received);
  }

 private:
  Fn fn_;
};

inline std::unique_ptr<sim::SinglePortProcess> sp_lambda(SpLambdaProcess::Fn fn) {
  return std::make_unique<SpLambdaProcess>(std::move(fn));
}

namespace detail {

inline void append_piece(std::string& out, const std::string& s) { out += s; }
inline void append_piece(std::string& out, const char* s) { out += s; }

template <class T, class = std::enable_if_t<std::is_integral_v<T>>>
void append_piece(std::string& out, T v) {
  out += std::to_string(v);
}

}  // namespace detail

/// Concatenates strings, C strings, and integers into one test-case name.
template <class... Parts>
[[nodiscard]] std::string case_name(Parts&&... parts) {
  std::string out;
  (detail::append_piece(out, std::forward<Parts>(parts)), ...);
  return out;
}

}  // namespace lft::test
