// Tests for the zero-copy message plane: POD Message invariants, payload
// arena integrity across rounds and chunk boundaries, Inbox::with_tag
// boundary cases, the radix delivery sweep's normal form under duplicate
// (receiver, tag, sender) triples, pooled single-port payloads, and the
// bit-identity of serial vs parallel stepping on the crash-consensus and
// gossip workloads.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/consensus.hpp"
#include "core/gossip.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/single_port.hpp"
#include "test_util.hpp"

namespace lft::sim {
namespace {

using test::lambda_process;

// ---- POD invariants --------------------------------------------------------

TEST(MessagePlane, MessageIsTriviallyCopyable) {
  static_assert(std::is_trivially_copyable_v<Message>);
  static_assert(sizeof(Message) == 40);
  Message m;
  m.from = 3;
  m.to = 4;
  m.tag = 7;
  m.value = 42;
  Message copy;
  std::memcpy(&copy, &m, sizeof(Message));  // raw relocation must be legal
  EXPECT_EQ(copy.from, 3);
  EXPECT_EQ(copy.value, 42u);
  EXPECT_FALSE(copy.has_body());
  EXPECT_TRUE(copy.body().empty());
}

TEST(MessagePlane, PayloadArenaStableAcrossChunks) {
  PayloadArena arena;
  // Force several chunks, including an oversize allocation.
  std::vector<std::byte> small(100, std::byte{0x11});
  std::vector<std::byte> huge(PayloadArena::kChunkBytes + 123, std::byte{0x22});
  const PayloadView a = arena.store(small);
  const PayloadView b = arena.store(huge);
  const PayloadView c = arena.store(small);
  EXPECT_EQ(a.size(), small.size());
  EXPECT_EQ(b.size(), huge.size());
  EXPECT_EQ(a[0], std::byte{0x11});
  EXPECT_EQ(b[b.size() - 1], std::byte{0x22});
  EXPECT_EQ(c[99], std::byte{0x11});
  EXPECT_EQ(arena.bytes_stored(), 2 * small.size() + huge.size());
  arena.clear();
  EXPECT_EQ(arena.bytes_stored(), 0u);
  // Reuse after clear returns the same storage (no growth).
  const PayloadView a2 = arena.store(small);
  EXPECT_EQ(a2.data(), a.data());
}

// ---- Inbox::with_tag boundary cases ---------------------------------------

Message make_msg(NodeId from, std::uint32_t tag) {
  Message m;
  m.from = from;
  m.to = 0;
  m.tag = tag;
  return m;
}

TEST(MessagePlane, WithTagBoundaries) {
  // Normal form: grouped by tag ascending.
  const std::vector<Message> batch{make_msg(1, 2), make_msg(2, 2), make_msg(1, 5),
                                   make_msg(3, 9)};
  const Inbox inbox{std::span<const Message>(batch)};
  EXPECT_EQ(inbox.with_tag(2).size(), 2u);   // first tag
  EXPECT_EQ(inbox.with_tag(5).size(), 1u);   // middle tag
  EXPECT_EQ(inbox.with_tag(9).size(), 1u);   // last tag
  EXPECT_TRUE(inbox.with_tag(0).empty());    // below the first tag
  EXPECT_TRUE(inbox.with_tag(4).empty());    // between tags
  EXPECT_TRUE(inbox.with_tag(10).empty());   // above the last tag
}

TEST(MessagePlane, WithTagSingleMessageInbox) {
  const std::vector<Message> batch{make_msg(7, 3)};
  const Inbox inbox{std::span<const Message>(batch)};
  EXPECT_EQ(inbox.with_tag(3).size(), 1u);
  EXPECT_EQ(inbox.with_tag(3)[0].from, 7);
  EXPECT_TRUE(inbox.with_tag(2).empty());
  EXPECT_TRUE(inbox.with_tag(4).empty());
}

TEST(MessagePlane, WithTagEmptyInbox) {
  const Inbox inbox;
  EXPECT_TRUE(inbox.with_tag(0).empty());
  EXPECT_TRUE(inbox.empty());
}

// ---- delivery normal form under the radix sweep ---------------------------

TEST(MessagePlane, DuplicateTriplesPreserveSendOrder) {
  // Two senders each send three messages with the *same* (receiver, tag)
  // and one with a second tag, interleaved with sends to another receiver.
  // The radix sweep must produce receiver-then-tag groups, sender-ascending
  // within a group, send-order within a sender.
  Engine engine(3, {});
  std::vector<std::uint64_t> seen;
  for (NodeId v = 1; v < 3; ++v) {
    engine.set_process(v, lambda_process([](Context& ctx, const Inbox&) {
                         if (ctx.round() == 0) {
                           const auto base = static_cast<std::uint64_t>(ctx.self()) * 100;
                           ctx.send(0, 8, base + 1);  // higher tag first
                           ctx.send(0, 4, base + 2);
                           ctx.send(0, 4, base + 3);  // duplicate triple of ^
                           ctx.send(0, 4, base + 4);  // and again
                         }
                         ctx.halt();
                       }));
  }
  engine.set_process(0, lambda_process([&seen](Context& ctx, const Inbox& inbox) {
                       for (const auto& m : inbox) seen.push_back(m.value);
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  engine.run();
  const std::vector<std::uint64_t> expected{102, 103, 104, 202, 203, 204, 101, 201};
  EXPECT_EQ(seen, expected);
}

TEST(MessagePlane, DegenerateTagsStillNormalForm) {
  // Tags past the counting-sort domain fall back to a comparison sort; the
  // normal form must be unchanged.
  Engine engine(2, {});
  std::vector<std::pair<std::uint32_t, std::uint64_t>> seen;
  engine.set_process(1, lambda_process([](Context& ctx, const Inbox&) {
                       if (ctx.round() == 0) {
                         ctx.send(0, 0xFFFFFFFFu, 1);
                         ctx.send(0, 3, 2);
                         ctx.send(0, 0x10000u, 3);
                         ctx.send(0, 3, 4);
                       }
                       ctx.halt();
                     }));
  engine.set_process(0, lambda_process([&seen](Context& ctx, const Inbox& inbox) {
                       for (const auto& m : inbox) seen.emplace_back(m.tag, m.value);
                       if (ctx.round() >= 1) ctx.halt();
                     }));
  engine.run();
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> expected{
      {3, 2}, {3, 4}, {0x10000u, 3}, {0xFFFFFFFFu, 1}};
  EXPECT_EQ(seen, expected);
}

// ---- payload integrity across the double-buffered arenas -------------------

TEST(MessagePlane, PayloadBytesSurviveDelivery) {
  // Bodies of many sizes (including > one arena chunk) sent every round for
  // several rounds: each receipt must read back exactly the sent pattern,
  // exercising arena reuse across the double buffer.
  const NodeId n = 4;
  const Round rounds = 6;
  Engine engine(n, {});
  std::int64_t checked = 0;
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, lambda_process([&checked, n, rounds](Context& ctx,
                                                               const Inbox& inbox) {
                         for (const auto& m : inbox) {
                           const auto body = m.body();
                           ASSERT_EQ(body.size(), m.value);
                           const auto fill = static_cast<std::byte>(m.from * 16 + 1);
                           for (const std::byte b : body) ASSERT_EQ(b, fill);
                           ++checked;
                         }
                         if (ctx.round() >= rounds) {
                           ctx.halt();
                           return;
                         }
                         const std::size_t len =
                             ctx.round() % 2 == 0
                                 ? 64u * static_cast<std::size_t>(ctx.self() + 1)
                                 : PayloadArena::kChunkBytes + 7;
                         const std::vector<std::byte> body(
                             len, static_cast<std::byte>(ctx.self() * 16 + 1));
                         ctx.send((ctx.self() + 1) % n, 1, len, 1 + 8 * len, body);
                       }));
  }
  const Report report = engine.run();
  EXPECT_EQ(checked, static_cast<std::int64_t>(n) * rounds);
  EXPECT_TRUE(report.completed);
}

TEST(MessagePlane, PayloadBytesSurviveDelayedDelivery) {
  // Same pattern as above, but every message rides the due-round delay
  // queue (lag 1..3): bodies are copied into the per-bucket arena at park
  // time and must read back exactly at injection, including oversize bodies
  // spanning arena chunks. Receivers stay up well past the longest lag, so
  // every parked message must eventually deliver — none may vanish.
  const NodeId n = 4;
  const Round rounds = 6;
  EngineConfig config;
  Engine engine(n, config);
  std::int64_t checked = 0;
  for (NodeId v = 0; v < n; ++v) {
    engine.set_process(v, lambda_process([&checked, n, rounds](Context& ctx,
                                                               const Inbox& inbox) {
                         for (const auto& m : inbox) {
                           const auto body = m.body();
                           ASSERT_EQ(body.size(), m.value);
                           const auto fill = static_cast<std::byte>(m.from * 16 + 1);
                           for (const std::byte b : body) ASSERT_EQ(b, fill);
                           ++checked;
                         }
                         if (ctx.round() >= rounds + 8) {
                           ctx.halt();
                           return;
                         }
                         if (ctx.round() >= rounds) return;
                         const std::size_t len =
                             ctx.round() % 2 == 0
                                 ? 64u * static_cast<std::size_t>(ctx.self() + 1)
                                 : PayloadArena::kChunkBytes + 7;
                         const std::vector<std::byte> body(
                             len, static_cast<std::byte>(ctx.self() * 16 + 1));
                         ctx.send((ctx.self() + 1) % n, 1, len, 1 + 8 * len, body);
                       }));
  }
  FaultPlan plan;
  plan.delay_all(0, kRoundForever, 1, 3);
  engine.add_fault_injector(make_plan_injector(std::move(plan)));
  const Report report = engine.run();
  EXPECT_EQ(checked, static_cast<std::int64_t>(n) * rounds);
  EXPECT_TRUE(report.completed);
}

// ---- single-port pooled payloads -------------------------------------------

TEST(MessagePlane, SinglePortQueuePoolsPayloads) {
  // Node 0 pushes a payload every round; node 1 polls only every other
  // round, building a backlog that crosses the queue-compaction threshold.
  // Every dequeued payload must match its message's value-encoded pattern.
  SinglePortConfig config;
  SinglePortEngine engine(2, config);
  std::int64_t received = 0;
  engine.set_process(
      0, test::sp_lambda([scratch = std::vector<std::byte>()](
                             SpContext& ctx, const std::optional<Message>&) mutable {
        SpAction action;
        if (ctx.round() < 24) {
          // Process-owned scratch: valid until the engine enqueues the send.
          scratch.assign(static_cast<std::size_t>(ctx.round()) + 1,
                         static_cast<std::byte>(ctx.round() + 1));
          action.send = SpSend{1, 2, static_cast<std::uint64_t>(ctx.round()), 1,
                               PayloadView(scratch)};
        } else {
          ctx.halt();
        }
        return action;
      }));
  engine.set_process(1, test::sp_lambda([&received](SpContext& ctx,
                                                    const std::optional<Message>& r) {
                       if (r.has_value()) {
                         const auto body = r->body();
                         EXPECT_EQ(body.size(), r->value + 1);
                         for (const std::byte b : body) {
                           EXPECT_EQ(b, static_cast<std::byte>(r->value + 1));
                         }
                         ++received;
                       }
                       SpAction action;
                       if (ctx.round() % 2 == 0) action.poll = 0;
                       if (ctx.round() >= 60) ctx.halt();
                       return action;
                     }));
  const Report report = engine.run();
  EXPECT_TRUE(report.completed);
  EXPECT_GE(received, 20);
}

// ---- serial vs parallel bit-identity ---------------------------------------

void expect_reports_identical(const Report& a, const Report& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.metrics.messages_total, b.metrics.messages_total);
  EXPECT_EQ(a.metrics.bits_total, b.metrics.bits_total);
  EXPECT_EQ(a.metrics.messages_honest, b.metrics.messages_honest);
  EXPECT_EQ(a.metrics.bits_honest, b.metrics.bits_honest);
  EXPECT_EQ(a.metrics.max_sends_per_node, b.metrics.max_sends_per_node);
  EXPECT_EQ(a.metrics.fallback_pulls, b.metrics.fallback_pulls);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.peak_round_messages, b.metrics.peak_round_messages);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t v = 0; v < a.nodes.size(); ++v) {
    EXPECT_EQ(a.nodes[v].crashed, b.nodes[v].crashed) << "node " << v;
    EXPECT_EQ(a.nodes[v].crash_round, b.nodes[v].crash_round) << "node " << v;
    EXPECT_EQ(a.nodes[v].halted, b.nodes[v].halted) << "node " << v;
    EXPECT_EQ(a.nodes[v].decided, b.nodes[v].decided) << "node " << v;
    EXPECT_EQ(a.nodes[v].decision, b.nodes[v].decision) << "node " << v;
    EXPECT_EQ(a.nodes[v].byzantine, b.nodes[v].byzantine) << "node " << v;
    EXPECT_EQ(a.nodes[v].omission, b.nodes[v].omission) << "node " << v;
    EXPECT_EQ(a.nodes[v].sends, b.nodes[v].sends) << "node " << v;
  }
}

TEST(MessagePlane, ParallelSteppingBitIdenticalFanout) {
  // Raw engine workload with payloads: enough active nodes to engage the
  // worker pool (the parallel threshold is 256 active).
  const NodeId n = 512;
  auto build_and_run = [n](int threads) {
    EngineConfig config;
    config.threads = threads;
    Engine engine(n, config);
    for (NodeId v = 0; v < n; ++v) {
      engine.set_process(v, lambda_process([n](Context& ctx, const Inbox& inbox) {
                           std::uint64_t acc = 0;
                           for (const auto& m : inbox) {
                             for (const std::byte b : m.body()) {
                               acc += static_cast<std::uint64_t>(b);
                             }
                           }
                           if (ctx.round() >= 5) {
                             ctx.halt();
                             return;
                           }
                           const std::vector<std::byte> body(
                               static_cast<std::size_t>(ctx.self() % 50),
                               static_cast<std::byte>(ctx.self()));
                           for (int i = 0; i < 3; ++i) {
                             const auto to = static_cast<NodeId>(
                                 (ctx.self() * 13 + i * 7 + acc) % n);
                             ctx.send(to, static_cast<std::uint32_t>(i), acc, 1, body);
                           }
                         }));
    }
    return engine.run();
  };
  const Report serial = build_and_run(1);
  const Report parallel = build_and_run(4);
  expect_reports_identical(serial, parallel);
}

TEST(MessagePlane, ParallelSteppingBitIdenticalCrashConsensus) {
  const NodeId n = 512;
  const std::int64_t t = 40;
  const auto params = core::ConsensusParams::practical(n, t);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) inputs[static_cast<std::size_t>(v)] = (v * 3 + 1) % 2;
  auto run_with_threads = [&](int threads) {
    core::RunOptions options;
    options.threads = threads;
    return core::run_system(
        n, t,
        [&](NodeId v) {
          return core::make_few_crashes_process(params, v,
                                                inputs[static_cast<std::size_t>(v)]);
        },
        make_scheduled(random_crash_schedule(n, t, 0, 4 * t, 0.5, 99)), options);
  };
  const Report serial = run_with_threads(1);
  const Report parallel = run_with_threads(3);
  EXPECT_TRUE(serial.completed);
  expect_reports_identical(serial, parallel);
}

TEST(MessagePlane, ParallelSteppingBitIdenticalGossip) {
  const NodeId n = 400;
  const std::int64_t t = 30;
  const auto params = core::GossipParams::practical(n, t);
  std::vector<std::uint64_t> rumors(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) rumors[static_cast<std::size_t>(v)] = 1000u + v;
  auto run_with_threads = [&](int threads) {
    core::RunOptions options;
    options.threads = threads;
    return core::run_gossip(params, rumors,
                            make_scheduled(random_crash_schedule(n, t, 0, 40, 0.5, 7)),
                            options);
  };
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  EXPECT_TRUE(serial.termination);
  expect_reports_identical(serial.report, parallel.report);
}

}  // namespace
}  // namespace lft::sim
