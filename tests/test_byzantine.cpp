// Tests for Section 7: signed relay chains, the certified value set,
// Dolev-Strong acceptance rules, and AB-Consensus under silent,
// equivocating, and flooding Byzantine behaviors.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "byzantine/ab_consensus.hpp"
#include "byzantine/acs.hpp"
#include "byzantine/dolev_strong.hpp"
#include "common/math.hpp"
#include "core/tags.hpp"
#include "test_util.hpp"

namespace lft::byzantine {
namespace {

// ---- SignedRelay -----------------------------------------------------------

TEST(SignedRelay, EncodeDecodeRoundTrip) {
  crypto::KeyRegistry registry(10, 1);
  SignedRelay relay;
  relay.origin = 2;
  relay.value = 1;
  relay.chain.push_back(registry.signer_for(2).sign(SignedRelay::payload_digest(2, 1)));
  relay.chain.push_back(registry.signer_for(5).sign(SignedRelay::payload_digest(2, 1)));
  ByteWriter w;
  relay.encode(w);
  ByteReader r(w.bytes());
  const auto decoded = SignedRelay::decode(r, 10, 8);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->origin, 2);
  EXPECT_EQ(decoded->value, 1u);
  ASSERT_EQ(decoded->chain.size(), 2u);
  EXPECT_TRUE(decoded->valid(registry, 10));
}

TEST(SignedRelay, ValidityRejectsForgeries) {
  crypto::KeyRegistry registry(10, 1);
  const auto d = SignedRelay::payload_digest(2, 1);
  SignedRelay relay{2, 1, {registry.signer_for(2).sign(d)}};
  EXPECT_TRUE(relay.valid(registry, 10));

  // First signer must be the origin.
  SignedRelay wrong_first{2, 1, {registry.signer_for(3).sign(d)}};
  EXPECT_FALSE(wrong_first.valid(registry, 10));

  // Duplicate signers rejected.
  SignedRelay dup{2, 1, {registry.signer_for(2).sign(d), registry.signer_for(2).sign(d)}};
  EXPECT_FALSE(dup.valid(registry, 10));

  // Tampered value invalidates the chain.
  SignedRelay tampered = relay;
  tampered.value = 0;
  EXPECT_FALSE(tampered.valid(registry, 10));

  // Signer outside the little group rejected.
  SignedRelay outsider{2, 1, {registry.signer_for(2).sign(d), registry.signer_for(9).sign(d)}};
  EXPECT_FALSE(outsider.valid(registry, 5));
}

// ---- ValueSet / CertifiedSet --------------------------------------------------

TEST(ValueSet, MaxRuleIgnoresNull) {
  ValueSet s(4);
  EXPECT_EQ(s.max_value(), 0u);  // all null
  s.set_value(1, 1);
  s.set_value(2, 0);
  EXPECT_EQ(s.max_value(), 1u);
}

TEST(ValueSet, DigestBindsContent) {
  ValueSet a(3), b(3);
  a.set_value(0, 1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(CertifiedSet, QuorumVerification) {
  crypto::KeyRegistry registry(10, 2);
  ValueSet values(6);
  values.set_value(0, 1);
  CertifiedSet set{values, {}};
  for (NodeId v = 0; v < 5; ++v) {
    set.quorum.push_back(registry.signer_for(v).sign(values.digest()));
  }
  EXPECT_TRUE(set.valid(registry, 6, 5));
  EXPECT_FALSE(set.valid(registry, 6, 6));

  // Duplicated signatures must not inflate the quorum.
  CertifiedSet dup{values, {}};
  for (int i = 0; i < 5; ++i) {
    dup.quorum.push_back(registry.signer_for(0).sign(values.digest()));
  }
  EXPECT_FALSE(dup.valid(registry, 6, 2));

  // Bogus tags rejected.
  CertifiedSet fake{values, {}};
  for (NodeId v = 0; v < 5; ++v) fake.quorum.push_back(crypto::Signature{v, 12345});
  EXPECT_FALSE(fake.valid(registry, 6, 2));

  // Round trip.
  ByteWriter w;
  set.encode(w);
  ByteReader r(w.bytes());
  const auto decoded = CertifiedSet::decode(r, 6);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->valid(registry, 6, 5));
}

// ---- DsNode --------------------------------------------------------------------

// Messages are POD views: the caller owns the payload bytes and must keep
// them alive while the message is in use.
std::vector<std::byte> relay_bytes(const SignedRelay& relay) {
  ByteWriter w;
  w.put_varint(1);
  relay.encode(w);
  return w.take();
}

sim::Message relay_message(NodeId from, NodeId to, const std::vector<std::byte>& body) {
  sim::Message m;
  m.from = from;
  m.to = to;
  m.tag = core::kTagDsRelay;
  m.set_body(body);
  return m;
}

TEST(DsNode, SourceBroadcastsAndResolves) {
  auto registry = std::make_shared<crypto::KeyRegistry>(4, 7);
  DsNode source(registry, registry->signer_for(0), 4, 1);
  source.set_own_value(1);
  const auto out0 = source.step(0, {});
  EXPECT_FALSE(out0.empty());
  const auto out1 = source.step(1, {});
  EXPECT_TRUE(out1.empty());  // nothing new
  const auto result = source.result();
  EXPECT_EQ(result.value(0), 1u);
  EXPECT_EQ(result.value(1), kNullValue);
}

TEST(DsNode, AcceptsValidChainAndRelays) {
  auto registry = std::make_shared<crypto::KeyRegistry>(4, 7);
  DsNode node(registry, registry->signer_for(1), 4, 1);
  SignedRelay relay{0, 1, {registry->signer_for(0).sign(SignedRelay::payload_digest(0, 1))}};
  const auto body = relay_bytes(relay);
  std::vector<sim::Message> inbox{relay_message(0, 1, body)};
  (void)node.step(0, {});
  const auto out = node.step(1, inbox);
  EXPECT_FALSE(out.empty()) << "must countersign and relay";
  EXPECT_EQ(node.result().value(0), 1u);
}

TEST(DsNode, RejectsShortChainAtLateRound) {
  auto registry = std::make_shared<crypto::KeyRegistry>(4, 7);
  DsNode node(registry, registry->signer_for(1), 4, 2);
  SignedRelay relay{0, 1, {registry->signer_for(0).sign(SignedRelay::payload_digest(0, 1))}};
  const auto body = relay_bytes(relay);
  std::vector<sim::Message> inbox{relay_message(0, 1, body)};
  (void)node.step(0, {});
  (void)node.step(1, {});
  (void)node.step(2, inbox);  // 1 signature < round 2: reject
  EXPECT_EQ(node.result().value(0), kNullValue);
}

TEST(DsNode, EquivocationYieldsNull) {
  auto registry = std::make_shared<crypto::KeyRegistry>(4, 7);
  DsNode node(registry, registry->signer_for(1), 4, 1);
  SignedRelay r0{0, 0, {registry->signer_for(0).sign(SignedRelay::payload_digest(0, 0))}};
  SignedRelay r1{0, 1, {registry->signer_for(0).sign(SignedRelay::payload_digest(0, 1))}};
  const auto b0 = relay_bytes(r0);
  const auto b1 = relay_bytes(r1);
  std::vector<sim::Message> inbox{relay_message(0, 1, b0), relay_message(0, 1, b1)};
  (void)node.step(0, {});
  (void)node.step(1, inbox);
  EXPECT_EQ(node.result().value(0), kNullValue);
}

TEST(DsNode, IgnoresGarbageBodies) {
  auto registry = std::make_shared<crypto::KeyRegistry>(4, 7);
  DsNode node(registry, registry->signer_for(1), 4, 1);
  sim::Message junk;
  junk.from = 2;
  junk.to = 1;
  junk.tag = core::kTagDsRelay;
  const std::vector<std::byte> junk_bytes{std::byte{0xFF}, std::byte{0x03}, std::byte{0x42}};
  junk.set_body(junk_bytes);
  std::vector<sim::Message> inbox{junk};
  (void)node.step(0, {});
  (void)node.step(1, inbox);
  for (NodeId o = 0; o < 4; ++o) EXPECT_EQ(node.result().value(o), kNullValue);
}

// ---- AB-Consensus -----------------------------------------------------------------

struct AbCase {
  NodeId n;
  std::int64_t t;
  std::string behavior;  // behavior of all Byzantine nodes
  int byz_little;        // how many Byzantine among little nodes
  int byz_big;           // how many Byzantine among the rest
};

class AbSweep : public ::testing::TestWithParam<AbCase> {};

TEST_P(AbSweep, HonestNodesAgree) {
  const auto& c = GetParam();
  const auto params = AbParams::practical(c.n, c.t);
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(c.n));
  for (NodeId v = 0; v < c.n; ++v) inputs[static_cast<std::size_t>(v)] = v % 2;

  std::vector<std::pair<NodeId, std::string>> byz;
  for (int i = 0; i < c.byz_little; ++i) {
    byz.emplace_back(static_cast<NodeId>(2 * i + 1), c.behavior);  // odd little ids
  }
  for (int i = 0; i < c.byz_big; ++i) {
    byz.emplace_back(static_cast<NodeId>(params.little_count + 1 + i), c.behavior);
  }
  ASSERT_LE(static_cast<std::int64_t>(byz.size()), c.t);

  const auto outcome = run_ab_consensus(params, inputs, byz);
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  ASSERT_TRUE(outcome.decision.has_value());
  EXPECT_LE(*outcome.decision, 1u) << "decision must be a proposed input";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbSweep,
    ::testing::Values(AbCase{40, 3, "silent", 3, 0}, AbCase{40, 3, "silent", 0, 3},
                      AbCase{40, 3, "equivocate", 3, 0}, AbCase{40, 3, "flood", 2, 1},
                      AbCase{80, 8, "silent", 4, 4}, AbCase{80, 8, "equivocate", 8, 0},
                      AbCase{80, 8, "flood", 4, 4}, AbCase{120, 20, "flood", 10, 10},
                      AbCase{64, 0, "silent", 0, 0}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.behavior, "_l", c.byz_little, "b",
                             c.byz_big);
    });

TEST(AbConsensus, MaxRuleWithAllHonest) {
  const auto params = AbParams::practical(50, 4);
  std::vector<std::uint64_t> inputs(50, 0);
  inputs[7] = 1;  // one little node proposes 1
  const auto outcome = run_ab_consensus(params, inputs, {});
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.max_rule_holds);
  EXPECT_EQ(outcome.decision, 1u);
}

TEST(AbConsensus, AllZeroInputsDecideZero) {
  const auto params = AbParams::practical(50, 4);
  std::vector<std::uint64_t> inputs(50, 0);
  const auto outcome = run_ab_consensus(params, inputs, {});
  EXPECT_TRUE(outcome.termination);
  EXPECT_EQ(outcome.decision, 0u);
}

TEST(AbConsensus, RoundsLinearInT) {
  // Theorem 11: O(t) rounds.
  for (std::int64_t t : {4, 8, 16}) {
    const NodeId n = static_cast<NodeId>(8 * t);
    const auto params = AbParams::practical(n, t);
    std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n), 1);
    const auto outcome = run_ab_consensus(params, inputs, {});
    EXPECT_TRUE(outcome.termination);
    EXPECT_LE(outcome.report.rounds,
              t + 12 * ceil_log2(static_cast<std::uint64_t>(n)) + 20)
        << "t=" << t;
  }
}

TEST(AbConsensus, HonestMessagesQuadraticInTPlusN) {
  // Theorem 11: O(t^2 + n) messages sent by non-faulty nodes.
  for (std::int64_t t : {4, 8, 16}) {
    const NodeId n = static_cast<NodeId>(10 * t);
    const auto params = AbParams::practical(n, t);
    std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n), 1);
    const auto outcome = run_ab_consensus(params, inputs, {});
    EXPECT_TRUE(outcome.termination);
    const std::int64_t bound = 8 * (25 * t * t + static_cast<std::int64_t>(n)) + 200;
    EXPECT_LE(outcome.report.metrics.messages_honest, bound) << "t=" << t;
  }
}

TEST(AbConsensus, ByzantineFloodDoesNotCountAsHonest) {
  const auto params = AbParams::practical(60, 5);
  std::vector<std::uint64_t> inputs(60, 0);
  const auto clean = run_ab_consensus(params, inputs, {});
  const auto flooded = run_ab_consensus(params, inputs, {{1, "flood"}, {30, "flood"}});
  EXPECT_TRUE(flooded.termination);
  EXPECT_TRUE(flooded.agreement);
  EXPECT_GT(flooded.report.metrics.messages_total, flooded.report.metrics.messages_honest);
  // Honest traffic stays within a small factor of the clean run (replies to
  // forged inquiries are rejected, so no honest amplification).
  EXPECT_LE(flooded.report.metrics.messages_honest,
            2 * clean.report.metrics.messages_honest + 500);
}

}  // namespace
}  // namespace lft::byzantine
