// The net plane's building blocks: the reactor seam (epoll and io_uring
// backends behind net::Reactor), the EpollLoop ready-list drain, and the
// ByteRing output buffer the buffered sessions flush through writev.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/epoll.hpp"
#include "net/reactor.hpp"
#include "net/ring.hpp"
#include "net/socket.hpp"

namespace lft::net {
namespace {

// ---- ByteRing ---------------------------------------------------------------

std::vector<std::byte> ring_contents(const ByteRing& ring) {
  std::vector<std::byte> out;
  for (const auto span : ring.readable()) {
    out.insert(out.end(), span.begin(), span.end());
  }
  return out;
}

TEST(ByteRing, PreservesByteOrderAcrossWrapAround) {
  ByteRing ring;
  std::vector<std::byte> expect;
  std::uint8_t next_in = 0;
  std::size_t consumed = 0;

  // Interleave appends and partial consumes with chunk sizes chosen to force
  // head_ far from zero and appends that wrap past the buffer end.
  for (int cycle = 0; cycle < 200; ++cycle) {
    std::vector<std::byte> chunk(static_cast<std::size_t>(37 + 61 * (cycle % 13)));
    for (auto& b : chunk) b = std::byte{next_in++};
    ring.append(chunk);
    expect.insert(expect.end(), chunk.begin(), chunk.end());

    const std::size_t take = (ring.size() * static_cast<std::size_t>(cycle % 3)) / 3;
    ASSERT_EQ(ring_contents(ring),
              std::vector<std::byte>(expect.begin() + static_cast<std::ptrdiff_t>(consumed),
                                     expect.end()));
    ring.consume(take);
    consumed += take;
  }
  ring.consume(ring.size());
  EXPECT_TRUE(ring.empty());
}

TEST(ByteRing, ReadableSplitsIntoAtMostTwoSpans) {
  ByteRing ring;
  // Fill, drain most, refill: the readable window must wrap and come back
  // as exactly two non-empty spans totalling size().
  std::vector<std::byte> chunk(3000, std::byte{0xab});
  ring.append(chunk);
  ring.consume(2900);
  ring.append(chunk);  // wraps in the 4096-byte initial buffer
  const auto spans = ring.readable();
  EXPECT_FALSE(spans[0].empty());
  EXPECT_EQ(spans[0].size() + spans[1].size(), ring.size());
  EXPECT_EQ(ring.size(), 100u + 3000u);
}

// ---- the reactor seam -------------------------------------------------------

TEST(ReactorSeam, ParseBackendAcceptsTheDocumentedNames) {
  ReactorBackend backend = ReactorBackend::kAuto;
  EXPECT_TRUE(parse_backend("auto", backend));
  EXPECT_EQ(backend, ReactorBackend::kAuto);
  EXPECT_TRUE(parse_backend("epoll", backend));
  EXPECT_EQ(backend, ReactorBackend::kEpoll);
  EXPECT_TRUE(parse_backend("io_uring", backend));
  EXPECT_EQ(backend, ReactorBackend::kIoUring);
  EXPECT_TRUE(parse_backend("iouring", backend));
  EXPECT_EQ(backend, ReactorBackend::kIoUring);
  EXPECT_FALSE(parse_backend("kqueue", backend));
}

TEST(ReactorSeam, MakeReactorDegradesGracefully) {
  const auto epoll = make_reactor(ReactorBackend::kEpoll);
  EXPECT_STREQ(epoll->name(), "epoll");
  const auto uring = make_reactor(ReactorBackend::kIoUring);
  if (io_uring_available()) {
    EXPECT_STREQ(uring->name(), "io_uring");
  } else {
    EXPECT_STREQ(uring->name(), "epoll") << "kIoUring must fall back, not fail";
  }
  const auto aut = make_reactor(ReactorBackend::kAuto);
  EXPECT_STREQ(aut->name(), io_uring_available() ? "io_uring" : "epoll");
}

/// Both backends run the same readiness contract suite; the io_uring
/// instantiation skips on kernels without io_uring.
class ReactorContract : public ::testing::TestWithParam<ReactorBackend> {
 protected:
  std::unique_ptr<Reactor> make() {
    if (GetParam() == ReactorBackend::kIoUring && !io_uring_available()) {
      return nullptr;
    }
    return make_reactor(GetParam());
  }
};

TEST_P(ReactorContract, DispatchesReadableAndHonorsRemove) {
  auto reactor = make();
  if (!reactor) GTEST_SKIP() << "io_uring unavailable on this kernel";

  int pipe_fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(pipe_fds), 0);
  int fired = 0;
  std::uint32_t last_events = 0;
  reactor->add(pipe_fds[0], EPOLLIN, [&](std::uint32_t events) {
    ++fired;
    last_events = events;
  });
  EXPECT_EQ(reactor->watched(), 1u);

  // Nothing readable yet: a poll dispatches nothing.
  EXPECT_EQ(reactor->wait(0), 0);
  EXPECT_EQ(fired, 0);

  ASSERT_EQ(::write(pipe_fds[1], "x", 1), 1);
  // Bounded block instead of a pure poll: the io_uring backend arms its
  // oneshot poll on the wait that first sees the fd.
  EXPECT_EQ(reactor->wait(1000), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_NE(last_events & EPOLLIN, 0u);

  // Still readable (the byte was not drained): dispatches again.
  EXPECT_EQ(reactor->wait(1000), 1);
  EXPECT_EQ(fired, 2);

  reactor->remove(pipe_fds[0]);
  EXPECT_EQ(reactor->watched(), 0u);
  EXPECT_EQ(reactor->wait(0), 0);
  EXPECT_EQ(fired, 2);

  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST_P(ReactorContract, ModifySwitchesTheWatchedEvents) {
  auto reactor = make();
  if (!reactor) GTEST_SKIP() << "io_uring unavailable on this kernel";

  int pipe_fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(pipe_fds), 0);
  int fired = 0;
  std::uint32_t last_events = 0;
  // Watch the WRITE end for readability — a pipe write end is never
  // readable, so nothing fires until modify() switches to EPOLLOUT.
  reactor->add(pipe_fds[1], EPOLLIN, [&](std::uint32_t events) {
    ++fired;
    last_events = events;
  });
  EXPECT_EQ(reactor->wait(0), 0);

  reactor->modify(pipe_fds[1], EPOLLOUT);
  EXPECT_EQ(reactor->wait(1000), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_NE(last_events & EPOLLOUT, 0u);

  reactor->remove(pipe_fds[1]);
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST_P(ReactorContract, CallbackMayRemoveItself) {
  auto reactor = make();
  if (!reactor) GTEST_SKIP() << "io_uring unavailable on this kernel";

  int pipe_fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(pipe_fds), 0);
  int fired = 0;
  reactor->add(pipe_fds[0], EPOLLIN, [&, reactor = reactor.get()](std::uint32_t) {
    ++fired;
    reactor->remove(pipe_fds[0]);
  });
  ASSERT_EQ(::write(pipe_fds[1], "x", 1), 1);
  EXPECT_EQ(reactor->wait(1000), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(reactor->watched(), 0u);
  EXPECT_EQ(reactor->wait(0), 0);
  EXPECT_EQ(fired, 1);

  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

std::string backend_name(const ::testing::TestParamInfo<ReactorBackend>& info) {
  return info.param == ReactorBackend::kEpoll ? "epoll" : "io_uring";
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorContract,
                         ::testing::Values(ReactorBackend::kEpoll,
                                           ReactorBackend::kIoUring),
                         backend_name);

// ---- EpollLoop ready-list drain ---------------------------------------------

TEST(EpollLoopDrain, DispatchesMoreReadyFdsThanOneWaitBatch) {
  // Regression test for the fixed 64-event wait array: with more than 64
  // fds ready at once, a single wait() must dispatch every one — the late
  // fds must not wait for the caller's next loop iteration. Callbacks
  // drain their fd, as every real reactor callback does.
  constexpr int kPipes = 80;  // > the 64-event epoll_wait batch
  EpollLoop loop;
  std::vector<std::array<int, 2>> pipes(kPipes);
  std::vector<int> fires(kPipes, 0);
  for (int i = 0; i < kPipes; ++i) {
    auto& p = pipes[static_cast<std::size_t>(i)];
    ASSERT_EQ(::pipe(p.data()), 0);
    ASSERT_EQ(::write(p[1], "x", 1), 1);
    loop.add(p[0], EPOLLIN, [&fires, i, fd = p[0]](std::uint32_t) {
      ++fires[static_cast<std::size_t>(i)];
      char drained = 0;
      (void)::read(fd, &drained, 1);
    });
  }
  EXPECT_EQ(loop.wait(0), kPipes);
  for (int i = 0; i < kPipes; ++i) {
    EXPECT_EQ(fires[static_cast<std::size_t>(i)], 1) << "pipe " << i;
  }
  for (auto& p : pipes) {
    loop.remove(p[0]);
    ::close(p[0]);
    ::close(p[1]);
  }
}

}  // namespace
}  // namespace lft::net
