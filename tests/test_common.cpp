// Unit tests for src/common: hashing, deterministic RNG, integer/modular
// math, the dynamic bitset, and the bounds-checked codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <set>
#include <vector>

#include "common/bitset.hpp"
#include "common/codec.hpp"
#include "common/flat_set64.hpp"
#include "common/hash.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"

namespace lft {
namespace {

// ---- hash -------------------------------------------------------------------

TEST(Hash, Mix64IsDeterministicAndDispersive) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Consecutive inputs should differ in roughly half the bits.
  int diff_bits = __builtin_popcountll(mix64(1000) ^ mix64(1001));
  EXPECT_GT(diff_bits, 16);
  EXPECT_LT(diff_bits, 48);
}

TEST(Hash, HashBytesDependsOnContentAndLength) {
  std::vector<std::byte> a{std::byte{1}, std::byte{2}, std::byte{3}};
  std::vector<std::byte> b{std::byte{1}, std::byte{2}, std::byte{4}};
  std::vector<std::byte> c{std::byte{1}, std::byte{2}};
  EXPECT_EQ(hash_bytes(a), hash_bytes(a));
  EXPECT_NE(hash_bytes(a), hash_bytes(b));
  EXPECT_NE(hash_bytes(a), hash_bytes(c));
}

TEST(Hash, HashWordsIsOrderSensitive) {
  std::vector<std::uint64_t> ab{1, 2};
  std::vector<std::uint64_t> ba{2, 1};
  EXPECT_NE(hash_words(ab), hash_words(ba));
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// ---- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(4);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, MakeSeedSeparatesPurposes) {
  EXPECT_NE(make_seed(1, 2, 3), make_seed(2, 2, 3));
  EXPECT_NE(make_seed(1, 2, 3), make_seed(1, 3, 2));
  EXPECT_EQ(make_seed(1, 2, 3), make_seed(1, 2, 3));
}

// ---- math ---------------------------------------------------------------------

TEST(Math, Logs) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_EQ(lg_rounds(1), 1);
  EXPECT_EQ(lg_rounds(5), 3);
}

TEST(Math, Primality) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(13));
  EXPECT_TRUE(is_prime(104729));  // 10000th prime
  EXPECT_FALSE(is_prime(104730));
  EXPECT_TRUE(is_prime(2147483647ULL));  // 2^31 - 1, Mersenne
  EXPECT_EQ(next_prime(14), 17ULL);
  EXPECT_EQ(next_prime(17), 17ULL);
}

TEST(Math, PowAndInverse) {
  EXPECT_EQ(powmod(2, 10, 1000), 24ULL);
  EXPECT_EQ(powmod(3, 0, 7), 1ULL);
  const std::uint64_t p = 1000003;
  for (std::uint64_t a : {2ULL, 999ULL, 123456ULL}) {
    EXPECT_EQ(mulmod(a, invmod(a, p), p), 1ULL);
  }
}

TEST(Math, LegendreSymbol) {
  // Squares mod 13: 1, 4, 9, 3, 12, 10.
  for (std::uint64_t qr : {1ULL, 4ULL, 9ULL, 3ULL, 12ULL, 10ULL}) {
    EXPECT_EQ(legendre(qr, 13), 1) << qr;
  }
  for (std::uint64_t nqr : {2ULL, 5ULL, 6ULL, 7ULL, 8ULL, 11ULL}) {
    EXPECT_EQ(legendre(nqr, 13), -1) << nqr;
  }
  EXPECT_EQ(legendre(13, 13), 0);
}

TEST(Math, SqrtModRecoversRoots) {
  for (std::uint64_t p : {13ULL, 17ULL, 29ULL, 101ULL, 1000003ULL}) {
    Rng rng(p);
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t x = 1 + rng.uniform(p - 1);
      const std::uint64_t a = mulmod(x, x, p);
      const std::uint64_t r = sqrtmod(a, p);
      EXPECT_EQ(mulmod(r, r, p), a) << "p=" << p << " a=" << a;
    }
  }
}

TEST(Math, SqrtModOfMinusOne) {
  // q == 1 (mod 4) admits i with i^2 == -1; this is the LPS ingredient.
  for (std::uint64_t q : {13ULL, 17ULL, 29ULL, 37ULL, 41ULL}) {
    const std::uint64_t i = sqrtmod(q - 1, q);
    EXPECT_EQ(mulmod(i, i, q), q - 1);
  }
}

// ---- bitset ---------------------------------------------------------------------

TEST(Bitset, SetTestCount) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.set(64, false);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, SetAllRespectsPadding) {
  DynamicBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
}

TEST(Bitset, OrAssignReportsChange) {
  DynamicBitset a(100), b(100);
  a.set(3);
  b.set(3);
  EXPECT_FALSE(a.or_assign(b));
  b.set(99);
  EXPECT_TRUE(a.or_assign(b));
  EXPECT_TRUE(a.test(99));
}

TEST(Bitset, MinusAndSubset) {
  DynamicBitset a(64), b(64);
  a.set(1);
  a.set(2);
  b.set(2);
  const auto d = a.minus(b);
  EXPECT_TRUE(d.test(1));
  EXPECT_FALSE(d.test(2));
  EXPECT_TRUE(b.is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(b));
}

TEST(Bitset, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(77);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 77u);
  EXPECT_EQ(b.find_next(77), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
}

TEST(Bitset, ForEachVisitsInOrder) {
  DynamicBitset b(150);
  std::vector<std::size_t> expected{0, 63, 64, 127, 128, 149};
  for (auto i : expected) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(b.to_indices(), expected);
}

TEST(Bitset, Equality) {
  DynamicBitset a(10), b(10), c(11);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a, b);
  b.set(4);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

// ---- codec -----------------------------------------------------------------------

TEST(Codec, RoundTripScalars) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_varint(0);
  w.put_varint(127);
  w.put_varint(128);
  w.put_varint(0xFFFFFFFFFFFFFFFFULL);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_varint(), 0u);
  EXPECT_EQ(r.get_varint(), 127u);
  EXPECT_EQ(r.get_varint(), 128u);
  EXPECT_EQ(r.get_varint(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, TruncatedReadsFailSoftly) {
  ByteWriter w;
  w.put_u32(5);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.get_u8().has_value());
  EXPECT_FALSE(r.get_u32().has_value());  // only 3 bytes left
  EXPECT_FALSE(r.get_u64().has_value());
}

TEST(Codec, VarintOverlongFails) {
  // 10 continuation bytes exceed the 64-bit shift budget.
  std::vector<std::byte> bad(10, std::byte{0x80});
  ByteReader r(bad);
  EXPECT_FALSE(r.get_varint().has_value());
}

TEST(Codec, BitsetRoundTrip) {
  DynamicBitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  ByteWriter w;
  w.put_bitset(b);
  ByteReader r(w.bytes());
  const auto decoded = r.get_bitset(100);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, b);
}

TEST(Codec, BitsetRejectsOversizeAndGarbagePadding) {
  DynamicBitset b(100);
  ByteWriter w;
  w.put_bitset(b);
  {
    ByteReader r(w.bytes());
    EXPECT_FALSE(r.get_bitset(64).has_value());  // declared 100 > cap 64
  }
  // Corrupt a padding bit (bit 100 within the second word).
  auto bytes = w.take();
  bytes[1 + 8 + 4] |= std::byte{0x10};  // varint(100)=1 byte, word0=8 bytes
  ByteReader r(bytes);
  EXPECT_FALSE(r.get_bitset(128).has_value());
}

TEST(Codec, GetBytesExactLength) {
  ByteWriter w;
  w.put_u8(1);
  w.put_u8(2);
  w.put_u8(3);
  ByteReader r(w.bytes());
  auto got = r.get_bytes(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 2u);
  EXPECT_FALSE(r.get_bytes(2).has_value());  // only 1 byte left
}

// ---- FlatSet64 -----------------------------------------------------------------

TEST(FlatSet64, InsertContainsErase) {
  FlatSet64 set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.insert(7));
  EXPECT_FALSE(set.insert(7));  // duplicate
  EXPECT_TRUE(set.contains(7));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.erase(7));
  EXPECT_FALSE(set.erase(7));
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.empty());
}

TEST(FlatSet64, SurvivesGrowthAndChurn) {
  // Insert/erase churn across several growths; mirror against std::set.
  FlatSet64 set;
  std::set<std::uint64_t> mirror;
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.uniform(4096);
    if (rng.uniform(3) == 0) {
      EXPECT_EQ(set.erase(key), mirror.erase(key) > 0);
    } else {
      EXPECT_EQ(set.insert(key), mirror.insert(key).second);
    }
  }
  EXPECT_EQ(set.size(), mirror.size());
  for (std::uint64_t key = 0; key < 4096; ++key) {
    EXPECT_EQ(set.contains(key), mirror.count(key) > 0) << key;
  }
}

TEST(FlatSet64, BackwardShiftKeepsProbeChainsIntact) {
  // Colliding keys probe linearly; erasing from the middle of a chain must
  // not orphan later entries.
  FlatSet64 set(8);
  for (std::uint64_t k = 1; k <= 64; ++k) set.insert(k);
  for (std::uint64_t k = 1; k <= 64; k += 2) EXPECT_TRUE(set.erase(k));
  for (std::uint64_t k = 1; k <= 64; ++k) {
    EXPECT_EQ(set.contains(k), k % 2 == 0) << k;
  }
}

}  // namespace
}  // namespace lft
