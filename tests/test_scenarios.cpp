// The scenario registry is a contract shared by tests, benches, the CLI
// runner, and CI: every named scenario must hold its stated invariant and be
// a deterministic function of (seed, threads) — same seed gives bit-identical
// Reports, including with the engine's parallel stepper. The timing-fault
// catalogue additionally holds the stronger digest-stream bar: every
// delay/GST scenario's full per-round RoundDigest sequence is bit-identical
// at 1, 2, and 4 engine threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "forensics/replay.hpp"
#include "forensics/trace.hpp"
#include "obs/obs.hpp"
#include "scenarios/scenarios.hpp"
#include "test_util.hpp"

namespace lft::scenarios {
namespace {

TEST(ScenarioRegistry, AtLeastFiftyScenariosSpanningAllFaultClasses) {
  const auto& all = all_scenarios();
  EXPECT_GE(all.size(), 50u);
  std::set<std::string> kinds;
  std::set<std::string> names;
  for (const auto& s : all) {
    kinds.insert(s.fault_kind);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario name " << s.name;
    EXPECT_GT(s.n, 0);
    EXPECT_TRUE(s.run_at != nullptr) << s.name;
  }
  EXPECT_TRUE(kinds.count("crash")) << "registry must cover the crash model";
  EXPECT_TRUE(kinds.count("omission"));
  EXPECT_TRUE(kinds.count("partition"));
  EXPECT_TRUE(kinds.count("byzantine"));
  EXPECT_TRUE(kinds.count("delay")) << "registry must cover timing faults";
  EXPECT_TRUE(kinds.count("gst")) << "registry must cover GST partial synchrony";
}

TEST(ScenarioRegistry, FindByName) {
  EXPECT_NE(find_scenario("crash_burst_flood"), nullptr);
  EXPECT_NE(find_scenario("gst_early_stabilize"), nullptr);
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

class ScenarioSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioSweep, InvariantHoldsAndSeedIsDeterministic) {
  const auto& s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const auto first = s.run(/*seed=*/1, /*threads=*/1);
  EXPECT_TRUE(first.ok) << s.name << ": " << first.detail;
  // Same seed, fresh run: bit-identical Report.
  const auto second = s.run(/*seed=*/1, /*threads=*/1);
  EXPECT_EQ(fingerprint(first.report), fingerprint(second.report)) << s.name;
  // Another seed must still satisfy the invariant.
  const auto other = s.run(/*seed=*/7, /*threads=*/1);
  EXPECT_TRUE(other.ok) << s.name << " seed 7: " << other.detail;
}

TEST_P(ScenarioSweep, ParallelStepperIsBitIdentical) {
  const auto& s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const auto serial = s.run(/*seed=*/3, /*threads=*/1);
  const auto parallel = s.run(/*seed=*/3, /*threads=*/4);
  EXPECT_EQ(fingerprint(serial.report), fingerprint(parallel.report)) << s.name;
  EXPECT_EQ(serial.ok, parallel.ok) << s.name;
}

INSTANTIATE_TEST_SUITE_P(All, ScenarioSweep,
                         ::testing::Range(0, static_cast<int>(all_scenarios().size())),
                         [](const auto& info) {
                           return all_scenarios()[static_cast<std::size_t>(info.param)].name;
                         });

// ---- timing-fault catalogue: digest-stream determinism ---------------------

/// Whether a scenario belongs to the timing-fault catalogue (delay/GST fault
/// class or the min-flood harness the catalogue is built on).
bool is_timing_scenario(const Scenario& s) {
  return s.fault_kind == "delay" || s.fault_kind == "gst" || s.protocol == "min_flood";
}

TEST(TimingFaults, DigestStreamBitIdenticalAtOneTwoAndFourThreads) {
  // The fingerprint sweep above certifies the final Report; the timing
  // catalogue also holds the per-round bar: the full RoundDigest stream —
  // including the v2 `delayed` and `delays` fields — must be bit-identical
  // across thread counts, because delayed injection participates in the
  // deterministic delivery sort.
  int covered = 0;
  for (const auto& s : all_scenarios()) {
    if (!is_timing_scenario(s)) continue;
    ++covered;
    const auto serial = forensics::record(s, /*seed=*/3, /*threads=*/1);
    EXPECT_TRUE(serial.result.ok) << s.name << ": " << serial.result.detail;
    for (const int threads : {2, 4}) {
      const auto threaded = forensics::record(s, /*seed=*/3, threads);
      const auto divergence = forensics::diff(serial.trace, threaded.trace);
      EXPECT_FALSE(divergence.diverged)
          << s.name << " at " << threads << " threads: " << divergence.detail;
      EXPECT_EQ(threaded.trace.report_fingerprint, serial.trace.report_fingerprint)
          << s.name;
    }
  }
  // The catalogue this PR ships: 28 delay/GST/min-flood scenarios.
  EXPECT_GE(covered, 28);
}

TEST(TimingFaults, DelayScenariosParkTrafficAndTheNoopParksNone) {
  // Sanity on the digest semantics: a real delay rule parks messages
  // (delayed > 0 somewhere), while the armed-but-zero-lag rule of
  // delay_zero_noop must never park anything — its executions take the
  // delay plane's code path but stay round-synchronous.
  const auto parked_total = [](const std::string& name) {
    const auto* s = find_scenario(name);
    EXPECT_NE(s, nullptr) << name;
    const auto run = forensics::record(*s, /*seed=*/1, /*threads=*/1);
    EXPECT_TRUE(run.result.ok) << name << ": " << run.result.detail;
    std::uint64_t parked = 0;
    for (const auto& d : run.trace.rounds) parked += d.delayed;
    return parked;
  };
  EXPECT_GT(parked_total("delay_fixed_pipe"), 0u);
  EXPECT_GT(parked_total("gst_late_stabilize"), 0u);
  EXPECT_EQ(parked_total("delay_zero_noop"), 0u);
}

// ---- telemetry plane: strictly out-of-band ---------------------------------

/// Records one execution with a trace sink and (optionally) a telemetry
/// registry attached, returning the full digest stream + fingerprint.
forensics::RecordedRun record_with_telemetry(const Scenario& s, std::uint64_t seed,
                                             int threads, obs::Registry* registry) {
  forensics::TraceRecorder recorder;
  core::RunOptions options;
  options.threads = threads;
  options.trace = &recorder;
  options.telemetry = registry;
  forensics::RecordedRun run;
  run.result = s.run_at(seed, s.n, s.t, options);
  run.trace = recorder.take();
  run.trace.report_fingerprint = fingerprint(run.result.report);
  return run;
}

TEST(Telemetry, AttachingARegistryNeverChangesAReportBit) {
  // The observability contract: EngineConfig::telemetry is strictly
  // out-of-band. For one scenario per protocol (covering every runner that
  // plumbs RunOptions::telemetry into the engine), the full RoundDigest
  // stream and Report fingerprint must be bit-identical with telemetry off,
  // on, and on-with-parallel-stepper — while the registry itself proves the
  // instrumentation actually ran.
  std::set<std::string> protocols_seen;
  for (const auto& s : all_scenarios()) {
    if (!protocols_seen.insert(s.protocol).second) continue;  // first per protocol
    const auto baseline = record_with_telemetry(s, /*seed=*/5, /*threads=*/1, nullptr);
    EXPECT_TRUE(baseline.result.ok) << s.name << ": " << baseline.result.detail;

    obs::Registry serial_registry;
    const auto with_tele =
        record_with_telemetry(s, /*seed=*/5, /*threads=*/1, &serial_registry);
    const auto divergence = forensics::diff(baseline.trace, with_tele.trace);
    EXPECT_FALSE(divergence.diverged)
        << s.name << " diverged with telemetry on: " << divergence.detail;
    EXPECT_EQ(with_tele.trace.report_fingerprint, baseline.trace.report_fingerprint)
        << s.name;

    // The registry really recorded: one step_ns sample per executed round,
    // and the rounds counter matches the Report exactly.
    const auto snapshot = serial_registry.snapshot();
    const auto* rounds = snapshot.find_counter("lft_engine_rounds_total");
    ASSERT_NE(rounds, nullptr) << s.name;
    EXPECT_EQ(rounds->value,
              static_cast<std::uint64_t>(baseline.result.report.rounds))
        << s.name;
    const auto* step = snapshot.find_histogram("lft_engine_step_ns");
    ASSERT_NE(step, nullptr) << s.name;
    EXPECT_EQ(step->data.count(), rounds->value) << s.name;

    obs::Registry parallel_registry;
    const auto parallel =
        record_with_telemetry(s, /*seed=*/5, /*threads=*/4, &parallel_registry);
    const auto parallel_divergence = forensics::diff(baseline.trace, parallel.trace);
    EXPECT_FALSE(parallel_divergence.diverged)
        << s.name << " diverged with telemetry + parallel stepper: "
        << parallel_divergence.detail;
    EXPECT_EQ(parallel.trace.report_fingerprint, baseline.trace.report_fingerprint)
        << s.name;
  }
  EXPECT_GE(protocols_seen.size(), 5u) << "protocol coverage shrank";
}

TEST(Telemetry, FleetAggregationIsOutOfBandToo) {
  // Fleet mode: instances run with per-slot registries handed out by the
  // runner; every fingerprint must match the serial telemetry-free run, and
  // the merged fleet snapshot must account for every executed round.
  const auto* s = find_scenario("crash_gossip_window");
  ASSERT_NE(s, nullptr);
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6};

  std::vector<std::uint64_t> expected_fingerprints;
  std::uint64_t expected_rounds = 0;
  for (const auto seed : seeds) {
    const auto solo = s->run(seed, /*threads=*/1);
    EXPECT_TRUE(solo.ok) << solo.detail;
    expected_fingerprints.push_back(fingerprint(solo.report));
    expected_rounds += static_cast<std::uint64_t>(solo.report.rounds);
  }

  sim::FleetConfig config;
  config.threads = 4;
  config.telemetry = true;
  sim::FleetRunner fleet(config);
  std::vector<sim::FleetRunner::Handle> handles;
  for (const auto seed : seeds) {
    handles.push_back(fleet.submit(sim::FleetJobObs(
        [s, seed](sim::EngineScratch* scratch, obs::Registry* registry) {
          core::RunOptions options;
          options.scratch = scratch;
          options.telemetry = registry;
          return s->run_at(seed, s->n, s->t, options).report;
        })));
  }
  fleet.wait_all();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(fingerprint(handles[i].wait()), expected_fingerprints[i])
        << "seed " << seeds[i];
  }
  const auto merged = fleet.telemetry();
  const auto* rounds = merged.find_counter("lft_engine_rounds_total");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->value, expected_rounds);
  const auto* step = merged.find_histogram("lft_engine_step_ns");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->data.count(), expected_rounds);
}

}  // namespace
}  // namespace lft::scenarios
