// The scenario registry is a contract shared by tests, benches, the CLI
// runner, and CI: every named scenario must hold its stated invariant and be
// a deterministic function of (seed, threads) — same seed gives bit-identical
// Reports, including with the engine's parallel stepper. The timing-fault
// catalogue additionally holds the stronger digest-stream bar: every
// delay/GST scenario's full per-round RoundDigest sequence is bit-identical
// at 1, 2, and 4 engine threads.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "forensics/replay.hpp"
#include "scenarios/scenarios.hpp"
#include "test_util.hpp"

namespace lft::scenarios {
namespace {

TEST(ScenarioRegistry, AtLeastFiftyScenariosSpanningAllFaultClasses) {
  const auto& all = all_scenarios();
  EXPECT_GE(all.size(), 50u);
  std::set<std::string> kinds;
  std::set<std::string> names;
  for (const auto& s : all) {
    kinds.insert(s.fault_kind);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario name " << s.name;
    EXPECT_GT(s.n, 0);
    EXPECT_TRUE(s.run_at != nullptr) << s.name;
  }
  EXPECT_TRUE(kinds.count("crash")) << "registry must cover the crash model";
  EXPECT_TRUE(kinds.count("omission"));
  EXPECT_TRUE(kinds.count("partition"));
  EXPECT_TRUE(kinds.count("byzantine"));
  EXPECT_TRUE(kinds.count("delay")) << "registry must cover timing faults";
  EXPECT_TRUE(kinds.count("gst")) << "registry must cover GST partial synchrony";
}

TEST(ScenarioRegistry, FindByName) {
  EXPECT_NE(find_scenario("crash_burst_flood"), nullptr);
  EXPECT_NE(find_scenario("gst_early_stabilize"), nullptr);
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

class ScenarioSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioSweep, InvariantHoldsAndSeedIsDeterministic) {
  const auto& s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const auto first = s.run(/*seed=*/1, /*threads=*/1);
  EXPECT_TRUE(first.ok) << s.name << ": " << first.detail;
  // Same seed, fresh run: bit-identical Report.
  const auto second = s.run(/*seed=*/1, /*threads=*/1);
  EXPECT_EQ(fingerprint(first.report), fingerprint(second.report)) << s.name;
  // Another seed must still satisfy the invariant.
  const auto other = s.run(/*seed=*/7, /*threads=*/1);
  EXPECT_TRUE(other.ok) << s.name << " seed 7: " << other.detail;
}

TEST_P(ScenarioSweep, ParallelStepperIsBitIdentical) {
  const auto& s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const auto serial = s.run(/*seed=*/3, /*threads=*/1);
  const auto parallel = s.run(/*seed=*/3, /*threads=*/4);
  EXPECT_EQ(fingerprint(serial.report), fingerprint(parallel.report)) << s.name;
  EXPECT_EQ(serial.ok, parallel.ok) << s.name;
}

INSTANTIATE_TEST_SUITE_P(All, ScenarioSweep,
                         ::testing::Range(0, static_cast<int>(all_scenarios().size())),
                         [](const auto& info) {
                           return all_scenarios()[static_cast<std::size_t>(info.param)].name;
                         });

// ---- timing-fault catalogue: digest-stream determinism ---------------------

/// Whether a scenario belongs to the timing-fault catalogue (delay/GST fault
/// class or the min-flood harness the catalogue is built on).
bool is_timing_scenario(const Scenario& s) {
  return s.fault_kind == "delay" || s.fault_kind == "gst" || s.protocol == "min_flood";
}

TEST(TimingFaults, DigestStreamBitIdenticalAtOneTwoAndFourThreads) {
  // The fingerprint sweep above certifies the final Report; the timing
  // catalogue also holds the per-round bar: the full RoundDigest stream —
  // including the v2 `delayed` and `delays` fields — must be bit-identical
  // across thread counts, because delayed injection participates in the
  // deterministic delivery sort.
  int covered = 0;
  for (const auto& s : all_scenarios()) {
    if (!is_timing_scenario(s)) continue;
    ++covered;
    const auto serial = forensics::record(s, /*seed=*/3, /*threads=*/1);
    EXPECT_TRUE(serial.result.ok) << s.name << ": " << serial.result.detail;
    for (const int threads : {2, 4}) {
      const auto threaded = forensics::record(s, /*seed=*/3, threads);
      const auto divergence = forensics::diff(serial.trace, threaded.trace);
      EXPECT_FALSE(divergence.diverged)
          << s.name << " at " << threads << " threads: " << divergence.detail;
      EXPECT_EQ(threaded.trace.report_fingerprint, serial.trace.report_fingerprint)
          << s.name;
    }
  }
  // The catalogue this PR ships: 28 delay/GST/min-flood scenarios.
  EXPECT_GE(covered, 28);
}

TEST(TimingFaults, DelayScenariosParkTrafficAndTheNoopParksNone) {
  // Sanity on the digest semantics: a real delay rule parks messages
  // (delayed > 0 somewhere), while the armed-but-zero-lag rule of
  // delay_zero_noop must never park anything — its executions take the
  // delay plane's code path but stay round-synchronous.
  const auto parked_total = [](const std::string& name) {
    const auto* s = find_scenario(name);
    EXPECT_NE(s, nullptr) << name;
    const auto run = forensics::record(*s, /*seed=*/1, /*threads=*/1);
    EXPECT_TRUE(run.result.ok) << name << ": " << run.result.detail;
    std::uint64_t parked = 0;
    for (const auto& d : run.trace.rounds) parked += d.delayed;
    return parked;
  };
  EXPECT_GT(parked_total("delay_fixed_pipe"), 0u);
  EXPECT_GT(parked_total("gst_late_stabilize"), 0u);
  EXPECT_EQ(parked_total("delay_zero_noop"), 0u);
}

}  // namespace
}  // namespace lft::scenarios
