// The scenario registry is a contract shared by tests, benches, the CLI
// runner, and CI: every named scenario must hold its stated invariant and be
// a deterministic function of (seed, threads) — same seed gives bit-identical
// Reports, including with the engine's parallel stepper.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "scenarios/scenarios.hpp"
#include "test_util.hpp"

namespace lft::scenarios {
namespace {

TEST(ScenarioRegistry, AtLeastTwelveScenariosSpanningAllFaultClasses) {
  const auto& all = all_scenarios();
  EXPECT_GE(all.size(), 12u);
  std::set<std::string> kinds;
  std::set<std::string> names;
  for (const auto& s : all) {
    kinds.insert(s.fault_kind);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario name " << s.name;
    EXPECT_GT(s.n, 0);
    EXPECT_TRUE(s.run_at != nullptr) << s.name;
  }
  EXPECT_TRUE(kinds.count("crash")) << "registry must cover the crash model";
  EXPECT_TRUE(kinds.count("omission"));
  EXPECT_TRUE(kinds.count("partition"));
  EXPECT_TRUE(kinds.count("byzantine"));
}

TEST(ScenarioRegistry, FindByName) {
  EXPECT_NE(find_scenario("crash_burst_flood"), nullptr);
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

class ScenarioSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioSweep, InvariantHoldsAndSeedIsDeterministic) {
  const auto& s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const auto first = s.run(/*seed=*/1, /*threads=*/1);
  EXPECT_TRUE(first.ok) << s.name << ": " << first.detail;
  // Same seed, fresh run: bit-identical Report.
  const auto second = s.run(/*seed=*/1, /*threads=*/1);
  EXPECT_EQ(fingerprint(first.report), fingerprint(second.report)) << s.name;
  // Another seed must still satisfy the invariant.
  const auto other = s.run(/*seed=*/7, /*threads=*/1);
  EXPECT_TRUE(other.ok) << s.name << " seed 7: " << other.detail;
}

TEST_P(ScenarioSweep, ParallelStepperIsBitIdentical) {
  const auto& s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const auto serial = s.run(/*seed=*/3, /*threads=*/1);
  const auto parallel = s.run(/*seed=*/3, /*threads=*/4);
  EXPECT_EQ(fingerprint(serial.report), fingerprint(parallel.report)) << s.name;
  EXPECT_EQ(serial.ok, parallel.ok) << s.name;
}

INSTANTIATE_TEST_SUITE_P(All, ScenarioSweep,
                         ::testing::Range(0, static_cast<int>(all_scenarios().size())),
                         [](const auto& info) {
                           return all_scenarios()[static_cast<std::size_t>(info.param)].name;
                         });

}  // namespace
}  // namespace lft::scenarios
