// Telemetry-plane unit coverage: histogram bucket-boundary exactness,
// percentile extraction against a sorted-vector oracle, merge associativity,
// top-bucket clamping, registry snapshot/merge semantics, and the binary
// codec round-trip the kStatsReply wire frame depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "obs/obs.hpp"

namespace lft::obs {
namespace {

/// SplitMix64: a tiny deterministic value source for oracle tests.
std::uint64_t next_value(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(ObsHistogram, BucketBoundariesAreExact) {
  // Every bucket's inclusive lower bound maps into that bucket, the value
  // just below it maps into the previous bucket, and (below the clamping
  // top bucket) the value just below the exclusive upper bound stays inside.
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t lower = Histogram::bucket_lower(b);
    EXPECT_EQ(Histogram::bucket_index(lower), b) << "lower bound of bucket " << b;
    if (b > 0) {
      EXPECT_EQ(Histogram::bucket_index(lower - 1), b - 1)
          << "value below bucket " << b << "'s lower bound";
    }
    if (b < Histogram::kBuckets - 1) {
      EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(b) - 1), b)
          << "value below bucket " << b << "'s upper bound";
      EXPECT_EQ(Histogram::bucket_upper(b), Histogram::bucket_lower(b + 1))
          << "buckets must tile the range with no gap";
    }
  }
  // Spot anchors: identity below 2, two sub-buckets per octave above.
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 3);
  EXPECT_EQ(Histogram::bucket_index(4), 4);
  EXPECT_EQ(Histogram::bucket_index(1000), Histogram::bucket_index(1023));
  EXPECT_NE(Histogram::bucket_index(1000), Histogram::bucket_index(1024));
}

TEST(ObsHistogram, PercentilesMatchSortedOracleBucket) {
  Histogram h;
  std::vector<std::uint64_t> values;
  std::uint64_t state = 42;
  for (int i = 0; i < 10000; ++i) {
    // Mix of magnitudes: sub-microsecond to multi-second latencies.
    const std::uint64_t v = next_value(state) % (std::uint64_t{1} << (10 + i % 22));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q / 100.0 * static_cast<double>(values.size()))));
    const std::uint64_t oracle = values[rank - 1];
    const std::uint64_t got = h.percentile(q);
    EXPECT_EQ(Histogram::bucket_index(got), Histogram::bucket_index(oracle))
        << "p" << q << ": got " << got << ", oracle " << oracle;
  }
  // The tracked extremes are exact, not bucket-quantized.
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());
  EXPECT_EQ(h.percentile(100.0), values.back());
  EXPECT_EQ(h.percentile(0.0), values.front());
  EXPECT_EQ(h.count(), values.size());
}

TEST(ObsHistogram, MergeIsAssociativeAndMatchesDirectRecording) {
  Histogram a, b, c, all;
  std::uint64_t state = 7;
  const auto fill = [&](Histogram& h, int n) {
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = next_value(state) % 5000000;
      h.record(v);
      all.record(v);
    }
  };
  fill(a, 100);
  fill(b, 1000);
  fill(c, 10);

  Histogram left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  Histogram bc = b;     // a + (b + c)
  bc.merge(c);
  Histogram right = a;
  right.merge(bc);

  EXPECT_EQ(left, right);
  EXPECT_EQ(left, all);
  // Merging an empty histogram is the identity.
  Histogram with_empty = left;
  with_empty.merge(Histogram{});
  EXPECT_EQ(with_empty, left);
}

TEST(ObsHistogram, TopBucketClampsWithoutLosingExactExtremes) {
  Histogram h;
  const std::uint64_t huge = std::uint64_t{1} << 40;  // ~18 minutes in ns
  h.record((std::uint64_t{1} << 32) - 1);             // last in-range value
  h.record(std::uint64_t{1} << 32);                   // first clamped value
  h.record(huge);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 3u);
  EXPECT_EQ(h.max(), huge);
  // The clamped percentile answer is bounded by the exact max, never by the
  // (unbounded) top bucket.
  EXPECT_EQ(h.percentile(99.0), huge);
  EXPECT_GE(h.percentile(50.0), Histogram::bucket_lower(Histogram::kBuckets - 1));
}

TEST(ObsHistogram, EmptyHistogramIsInert) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(ObsRegistry, RegistrationIsIdempotentAndStable) {
  Registry reg;
  Counter& c1 = reg.counter("lft_test_total");
  Counter& c2 = reg.counter("lft_test_total");
  EXPECT_EQ(&c1, &c2);
  c1.inc();
  c2.add(2);
  EXPECT_EQ(c1.value(), 3u);
  // References survive later registrations (stable addresses).
  for (int i = 0; i < 100; ++i) reg.counter("lft_churn_" + std::to_string(i));
  EXPECT_EQ(c1.value(), 3u);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(ObsRegistry, SnapshotRendersPrometheusAndJson) {
  Registry reg;
  reg.counter("lft_requests_total").add(42);
  reg.gauge("lft_depth").set(7);
  Histogram& h = reg.histogram("lft_latency_ns");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<std::uint64_t>(i) * 1000);

  const Snapshot snap = reg.snapshot();
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE lft_requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("lft_requests_total 42"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE lft_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE lft_latency_ns summary"), std::string::npos);
  EXPECT_NE(prom.find("lft_latency_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(prom.find("lft_latency_ns_count 100"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"metric\": \"lft_latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
}

TEST(ObsSnapshot, BinaryCodecRoundTripsExactly) {
  Registry reg;
  reg.counter("lft_a_total").add(123456789);
  reg.gauge("lft_b").set(-42);
  Histogram& h = reg.histogram("lft_c_ns");
  std::uint64_t state = 3;
  for (int i = 0; i < 5000; ++i) h.record(next_value(state) % 100000000);
  const Snapshot snap = reg.snapshot();

  ByteWriter writer;
  snap.encode(writer);
  ByteReader reader(writer.view());
  const auto decoded = Snapshot::decode(reader);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(reader.exhausted());

  ASSERT_EQ(decoded->counters.size(), 1u);
  EXPECT_EQ(decoded->counters[0].name, "lft_a_total");
  EXPECT_EQ(decoded->counters[0].value, 123456789u);
  ASSERT_EQ(decoded->gauges.size(), 1u);
  EXPECT_EQ(decoded->gauges[0].value, -42);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  EXPECT_EQ(decoded->histograms[0].data, h);

  // Truncated input fails softly at every prefix length.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, writer.size() / 2}) {
    ByteReader short_reader(writer.view().subspan(0, cut));
    EXPECT_FALSE(Snapshot::decode(short_reader).has_value()) << "prefix " << cut;
  }
}

TEST(ObsSnapshot, MergeFoldsByNameWithCounterAddGaugeMaxHistogramMerge) {
  Registry a, b;
  a.counter("lft_n_total").add(10);
  b.counter("lft_n_total").add(5);
  b.counter("lft_only_b_total").add(1);
  a.gauge("lft_hw").set(3);
  b.gauge("lft_hw").set(9);
  a.histogram("lft_h_ns").record(100);
  b.histogram("lft_h_ns").record(200);

  Snapshot merged = a.snapshot();
  merged.merge_from(b.snapshot());
  EXPECT_EQ(merged.find_counter("lft_n_total")->value, 15u);
  EXPECT_EQ(merged.find_counter("lft_only_b_total")->value, 1u);
  EXPECT_EQ(merged.find_gauge("lft_hw")->value, 9);
  EXPECT_EQ(merged.find_histogram("lft_h_ns")->data.count(), 2u);
  EXPECT_EQ(merged.find_histogram("lft_h_ns")->data.max(), 200u);

  // Registry-level merge agrees with snapshot-level merge.
  Registry folded;
  folded.merge_from(a);
  folded.merge_from(b);
  const Snapshot via_registry = folded.snapshot();
  EXPECT_EQ(via_registry.find_counter("lft_n_total")->value, 15u);
  EXPECT_EQ(via_registry.find_gauge("lft_hw")->value, 9);
  EXPECT_EQ(via_registry.find_histogram("lft_h_ns")->data.count(), 2u);
}

}  // namespace
}  // namespace lft::obs
