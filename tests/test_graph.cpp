// Unit tests for the graph substrate: CSR core, reference families,
// deterministic random-regular construction, LPS Ramanujan graphs, Margulis
// expanders, spectral estimation, and the certified overlay factory.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/math.hpp"
#include "graph/families.hpp"
#include "graph/graph.hpp"
#include "graph/lps.hpp"
#include "graph/margulis.hpp"
#include "graph/overlay.hpp"
#include "graph/properties.hpp"
#include "graph/random_regular.hpp"
#include "graph/spectral.hpp"

namespace lft::graph {
namespace {

// ---- Graph core --------------------------------------------------------------

TEST(GraphCore, FromEdgesDedupsAndSorts) {
  std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);  // (0,1) and (1,2); self-loop dropped
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  const auto ns = g.neighbors(1);
  EXPECT_EQ(ns[0], 0);
  EXPECT_EQ(ns[1], 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphCore, EmptyGraph) {
  const Graph g = Graph::from_edges(4, {});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_EQ(g.min_degree(), 0);
}

// ---- families ------------------------------------------------------------------

TEST(Families, CompleteGraph) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 5);
  EXPECT_TRUE(is_connected(g));
}

TEST(Families, RingGraph) {
  const Graph g = ring_graph(10);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(Families, StarGraph) {
  const Graph g = star_graph(8);
  EXPECT_EQ(g.degree(0), 7);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Families, Hypercube) {
  const Graph g = hypercube_graph(5);
  EXPECT_EQ(g.num_vertices(), 32);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 5);
  EXPECT_TRUE(is_connected(g));
}

TEST(Families, Torus) {
  const Graph g = torus_graph(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_TRUE(is_connected(g));
}

// ---- random regular ---------------------------------------------------------------

TEST(RandomRegular, ProducesSimpleRegularGraph) {
  for (auto [n, d] : std::vector<std::pair<NodeId, int>>{{50, 4}, {101, 8}, {256, 16}}) {
    const Graph g = random_regular_graph(n, d, 1234);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_TRUE(g.is_regular()) << "n=" << n << " d=" << d;
    EXPECT_EQ(g.max_degree(), d);
    EXPECT_EQ(g.num_edges(), static_cast<std::int64_t>(n) * d / 2);
  }
}

TEST(RandomRegular, DeterministicInSeed) {
  const Graph a = random_regular_graph(128, 6, 99);
  const Graph b = random_regular_graph(128, 6, 99);
  const Graph c = random_regular_graph(128, 6, 100);
  for (NodeId v = 0; v < 128; ++v) {
    const auto na = a.neighbors(v), nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
  bool any_diff = false;
  for (NodeId v = 0; v < 128 && !any_diff; ++v) {
    const auto na = a.neighbors(v), nc = c.neighbors(v);
    if (na.size() != nc.size()) {
      any_diff = true;
      break;
    }
    for (std::size_t i = 0; i < na.size(); ++i) {
      if (na[i] != nc[i]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomRegular, TypicallyConnectedAndExpanding) {
  const Graph g = random_regular_graph(500, 8, 7);
  EXPECT_TRUE(is_connected(g));
  EXPECT_LT(second_eigenvalue_estimate(g), 8.0 * 0.8);
}

// ---- LPS Ramanujan -----------------------------------------------------------------

TEST(Lps, SmallPslInstanceIsRamanujan) {
  // p=5, q=13: legendre(5,13)=-1? squares mod 13 are {1,3,4,9,10,12}; 5 is
  // not among them, so this is the bipartite PGL case with q(q^2-1)=2184
  // vertices. Use p=13? Instead pick from the catalog.
  const auto catalog = lps_catalog(3000);
  ASSERT_FALSE(catalog.empty());
  const auto params = catalog.front();
  const auto result = lps_graph(params.p, params.q);
  EXPECT_FALSE(result.bipartite);
  EXPECT_EQ(result.graph.num_vertices(), params.vertices);
  EXPECT_TRUE(result.graph.is_regular());
  EXPECT_EQ(result.graph.max_degree(), result.degree);
  EXPECT_TRUE(is_connected(result.graph));
  // The genuine Ramanujan bound, no slack.
  EXPECT_LE(second_eigenvalue_estimate(result.graph, 300),
            ramanujan_bound(result.degree) * 1.001);
}

TEST(Lps, BipartitePglInstance) {
  // p=5, q=13 has legendre(5,13) == -1 -> PGL, bipartite, 2184 vertices.
  ASSERT_EQ(lft::legendre(5, 13), -1);
  const auto result = lps_graph(5, 13);
  EXPECT_TRUE(result.bipartite);
  EXPECT_EQ(result.graph.num_vertices(), 13 * (13 * 13 - 1));
  EXPECT_TRUE(result.graph.is_regular());
  EXPECT_EQ(result.graph.max_degree(), 6);
  EXPECT_TRUE(is_connected(result.graph));
}

TEST(Lps, CatalogSorted) {
  const auto catalog = lps_catalog(30000);
  EXPECT_GE(catalog.size(), 2u);
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LE(catalog[i - 1].vertices, catalog[i].vertices);
  }
}

// ---- Margulis -----------------------------------------------------------------------

TEST(Margulis, SizeAndConnectivity) {
  const Graph g = margulis_graph(16);
  EXPECT_EQ(g.num_vertices(), 256);
  EXPECT_TRUE(is_connected(g));
  EXPECT_LE(g.max_degree(), 8);
  EXPECT_GE(g.min_degree(), 4);
}

TEST(Margulis, IsAnExpander) {
  const Graph g = margulis_graph(20);
  // Margulis bound: lambda <= 5*sqrt(2) ~ 7.07 < 8.
  EXPECT_LT(second_eigenvalue_estimate(g), 7.3);
  EXPECT_GT(edge_expansion_lower_bound(g), 0.2);
}

// ---- spectral ------------------------------------------------------------------------

TEST(Spectral, CompleteGraphLambdaIsOne) {
  // K_n spectrum: {n-1, -1, ..., -1}.
  const Graph g = complete_graph(40);
  EXPECT_NEAR(second_eigenvalue_estimate(g, 200), 1.0, 0.05);
}

TEST(Spectral, RingLambdaNearTwo) {
  const Graph g = ring_graph(64);
  EXPECT_NEAR(second_eigenvalue_estimate(g, 400), 2.0 * std::cos(2 * M_PI / 64), 0.05);
}

TEST(Spectral, HypercubeLambdaSeesBipartiteness) {
  // Q_d spectrum: d - 2k, including -d (bipartite), so
  // max(|lambda_2|, |lambda_n|) = d. The estimator must find it.
  const Graph g = hypercube_graph(6);
  EXPECT_NEAR(second_eigenvalue_estimate(g, 300), 6.0, 0.1);
}

TEST(Spectral, RamanujanBoundValue) {
  EXPECT_NEAR(ramanujan_bound(6), 2.0 * std::sqrt(5.0), 1e-12);
}

// ---- overlay provider -----------------------------------------------------------------

TEST(Overlay, FallsBackToCompleteForHighDegree) {
  const Graph g = make_overlay(10, 20, 1);
  EXPECT_EQ(g.num_edges(), 45);
  EXPECT_EQ(g.max_degree(), 9);
}

TEST(Overlay, ProducesCertifiedExpander) {
  const Graph g = make_overlay(300, 10, 7);
  EXPECT_EQ(g.num_vertices(), 300);
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(is_connected(g));
  EXPECT_LE(second_eigenvalue_estimate(g), ramanujan_bound(10) * 1.25 + 1e-9);
}

TEST(Overlay, BumpsOddParity) {
  // n and degree both odd -> n*d odd -> degree bumped to 6.
  const Graph g = make_overlay(101, 5, 3);
  EXPECT_EQ(g.max_degree(), 6);
  EXPECT_TRUE(g.is_regular());
}

TEST(Overlay, SharedOverlayCachesByKey) {
  clear_overlay_cache();
  const auto a = shared_overlay(200, 8, 42);
  const auto b = shared_overlay(200, 8, 42);
  const auto c = shared_overlay(200, 8, 43);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

TEST(Overlay, DeterministicAcrossCacheClears) {
  clear_overlay_cache();
  const auto a = shared_overlay(150, 6, 5);
  clear_overlay_cache();
  const auto b = shared_overlay(150, 6, 5);
  for (NodeId v = 0; v < 150; ++v) {
    const auto na = a->neighbors(v), nb = b->neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

}  // namespace
}  // namespace lft::graph
