// Tests for the classical baselines: correctness under the same adversary
// suite as the paper's algorithms, plus the complexity shapes Table 1
// attributes to prior work (which the benches compare against).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "common/rng.hpp"
#include "sim/adversary.hpp"
#include "test_util.hpp"

namespace lft::baselines {
namespace {

std::vector<int> random_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (auto& b : inputs) b = static_cast<int>(rng.uniform(2));
  return inputs;
}

std::unique_ptr<sim::FaultInjector> crash(const std::string& kind, NodeId n, std::int64_t t,
                                           std::uint64_t seed) {
  if (kind == "none" || t == 0) return nullptr;
  if (kind == "burst0") return sim::make_scheduled(sim::burst_crash_schedule(n, t, 0, seed));
  if (kind == "random") {
    return sim::make_scheduled(sim::random_crash_schedule(n, t, 0, t + 2, 0.0, seed));
  }
  if (kind == "partial") {
    return sim::make_scheduled(sim::random_crash_schedule(n, t, 0, t + 2, 0.5, seed));
  }
  ADD_FAILURE() << "unknown adversary " << kind;
  return nullptr;
}

// ---- FloodSet ----------------------------------------------------------------

struct BaselineCase {
  NodeId n;
  std::int64_t t;
  std::string adversary;
};

class FloodSetSweep : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(FloodSetSweep, SolvesConsensus) {
  const auto& c = GetParam();
  const auto inputs = random_inputs(c.n, 3);
  const auto outcome = run_floodset(c.n, c.t, inputs, crash(c.adversary, c.n, c.t, 17));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FloodSetSweep,
    ::testing::Values(BaselineCase{20, 0, "none"}, BaselineCase{20, 5, "burst0"},
                      BaselineCase{40, 10, "random"}, BaselineCase{40, 10, "partial"},
                      BaselineCase{60, 20, "random"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.adversary);
    });

TEST(FloodSet, QuadraticMessages) {
  const NodeId n = 40;
  const std::int64_t t = 10;
  const auto outcome = run_floodset(n, t, random_inputs(n, 1), nullptr);
  // (t+1) full exchanges of n(n-1) messages each.
  EXPECT_GE(outcome.report.metrics.messages_total, (t + 1) * n * (n - 1));
  EXPECT_EQ(outcome.report.rounds, t + 2);
}

// ---- Rotating coordinator -------------------------------------------------------

class CoordinatorSweep : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(CoordinatorSweep, SolvesConsensus) {
  const auto& c = GetParam();
  const auto inputs = random_inputs(c.n, 5);
  const auto outcome =
      run_rotating_coordinator(c.n, c.t, inputs, crash(c.adversary, c.n, c.t, 29));
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.validity);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoordinatorSweep,
    ::testing::Values(BaselineCase{20, 0, "none"}, BaselineCase{50, 10, "burst0"},
                      BaselineCase{50, 10, "random"}, BaselineCase{50, 10, "partial"},
                      BaselineCase{100, 30, "random"}),
    [](const auto& info) {
      const auto& c = info.param;
      return test::case_name("n", c.n, "t", c.t, "_", c.adversary);
    });

TEST(RotatingCoordinator, LinearTimesNMessages) {
  const NodeId n = 64;
  const std::int64_t t = 16;
  const auto outcome = run_rotating_coordinator(n, t, random_inputs(n, 2), nullptr);
  EXPECT_LE(outcome.report.metrics.messages_total, (t + 1) * (n - 1));
  EXPECT_EQ(outcome.report.rounds, t + 2);
}

// ---- All-to-all gossip --------------------------------------------------------------

TEST(AllToAllGossip, ConditionsHoldUnderCrashes) {
  for (const char* kind : {"none", "burst0", "random"}) {
    const auto outcome = run_all_to_all_gossip(80, 16, crash(kind, 80, 16, 7));
    EXPECT_TRUE(outcome.condition1) << kind;
    EXPECT_TRUE(outcome.condition2) << kind;
    EXPECT_TRUE(outcome.report.completed);
  }
}

TEST(AllToAllGossip, QuadraticMessagesConstantRounds) {
  const auto outcome = run_all_to_all_gossip(100, 0, nullptr);
  EXPECT_EQ(outcome.report.metrics.messages_total, 100 * 99);
  EXPECT_EQ(outcome.report.rounds, 2);
}

// ---- Naive checkpointing --------------------------------------------------------------

TEST(NaiveCheckpointing, AllThreeConditionsUnderCrashes) {
  for (const char* kind : {"none", "burst0", "random", "partial"}) {
    const auto outcome = run_naive_checkpointing(60, 12, crash(kind, 60, 12, 13));
    EXPECT_TRUE(outcome.all_good()) << kind;
  }
}

TEST(NaiveCheckpointing, LinearTimesNMessages) {
  const NodeId n = 64;
  const std::int64_t t = 16;
  const auto outcome = run_naive_checkpointing(n, t, nullptr);
  EXPECT_TRUE(outcome.all_good());
  // n^2 presence + (t+1) coordinator broadcasts of n-1 sets.
  EXPECT_LE(outcome.report.metrics.messages_total,
            static_cast<std::int64_t>(n) * n + (t + 1) * n);
  EXPECT_EQ(outcome.report.rounds, t + 3);
}

// ---- Full Dolev-Strong -------------------------------------------------------------------

TEST(FullDolevStrong, AgreesWithAllHonest) {
  std::vector<std::uint64_t> inputs(30, 0);
  inputs[7] = 1;
  const auto outcome = run_full_dolev_strong(30, 5, inputs, {});
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_EQ(outcome.decision, 1u);
}

TEST(FullDolevStrong, ToleratesByzantineMinority) {
  std::vector<std::uint64_t> inputs(30, 1);
  const auto outcome = run_full_dolev_strong(
      30, 5, inputs, {{1, "silent"}, {2, "equivocate"}, {3, "flood"}});
  EXPECT_TRUE(outcome.termination);
  EXPECT_TRUE(outcome.agreement);
}

TEST(FullDolevStrong, QuadraticHonestMessages) {
  std::vector<std::uint64_t> inputs(40, 1);
  const auto outcome = run_full_dolev_strong(40, 4, inputs, {});
  // Every node broadcasts at least its own instance once: Theta(n^2).
  EXPECT_GE(outcome.report.metrics.messages_honest, 40 * 39);
}

}  // namespace
}  // namespace lft::baselines
