// The documentation plane is part of the contract: docs/scenarios.md's
// catalogue table must mirror the live scenario registry (name, protocol,
// fault class, default n, default t — in registry order), and the docs the
// README links to must exist. These tests read the markdown from the source
// tree (LFT_SOURCE_DIR is injected by CMake), so a registry change that
// forgets the catalogue — or a doc rename that breaks links — fails CTest.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "forensics/replay.hpp"
#include "forensics/shrink.hpp"
#include "scenarios/scenarios.hpp"
#include "service/wire.hpp"

namespace lft {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string docs_path(const char* name) {
  return std::string(LFT_SOURCE_DIR) + "/docs/" + name;
}

/// One parsed row of the scenarios.md catalogue table.
struct DocRow {
  std::string name;
  std::string protocol;
  std::string fault;
  NodeId n = 0;
  std::int64_t t = 0;
};

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t`");
  const auto end = s.find_last_not_of(" \t`");
  if (begin == std::string::npos) return "";
  return s.substr(begin, end - begin + 1);
}

/// Extracts the catalogue rows: markdown table lines whose first cell is a
/// `code`-quoted scenario name.
std::vector<DocRow> parse_catalogue(const std::string& markdown) {
  std::vector<DocRow> rows;
  std::istringstream lines(markdown);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| `", 0) != 0) continue;
    std::vector<std::string> cells;
    std::size_t pos = 1;  // skip the leading '|'
    while (pos < line.size()) {
      const std::size_t bar = line.find('|', pos);
      if (bar == std::string::npos) break;
      cells.push_back(trim(line.substr(pos, bar - pos)));
      pos = bar + 1;
    }
    if (cells.size() < 5) continue;
    DocRow row;
    row.name = cells[0];
    row.protocol = cells[1];
    row.fault = cells[2];
    row.n = static_cast<NodeId>(std::stol(cells[3]));
    row.t = std::stoll(cells[4]);
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(DocsScenarioCatalogue, MatchesLiveRegistryExactly) {
  const auto markdown = read_file(docs_path("scenarios.md"));
  const auto rows = parse_catalogue(markdown);
  const auto& registry = scenarios::all_scenarios();

  ASSERT_EQ(rows.size(), registry.size())
      << "docs/scenarios.md lists " << rows.size() << " scenarios, the registry has "
      << registry.size() << " — update the catalogue table";

  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& s = registry[i];
    const auto& row = rows[i];
    EXPECT_EQ(row.name, s.name) << "catalogue row " << i << " out of registry order";
    EXPECT_EQ(row.protocol, s.protocol) << s.name;
    EXPECT_EQ(row.fault, s.fault_kind) << s.name;
    EXPECT_EQ(row.n, s.n) << s.name;
    EXPECT_EQ(row.t, s.t) << s.name;
  }
}

TEST(DocsScenarioCatalogue, EveryFaultClassAppears) {
  const auto markdown = read_file(docs_path("scenarios.md"));
  for (const char* kind :
       {"crash", "omission", "partition", "link", "byzantine", "delay", "gst", "mixed"}) {
    bool found = false;
    for (const auto& row : parse_catalogue(markdown)) found = found || row.fault == kind;
    EXPECT_TRUE(found) << "no catalogue row with fault class " << kind;
  }
}

TEST(Docs, ArchitectureDocCoversTheContracts) {
  const auto markdown = read_file(docs_path("architecture.md"));
  // Section anchors the README and other docs rely on.
  for (const char* needle :
       {"round pipeline", "PayloadArena lifetime", "FaultInjector contract",
        "fleet scheduling model", "pre_round", "on_round", "EngineScratch",
        "normal form", "forensics plane", "TraceSink", "RoundDigest",
        "forensics::shrink"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/architecture.md lacks '" << needle << "'";
  }
}

TEST(Docs, ArchitectureDocCoversTheTimingFaultPlane) {
  const auto markdown = read_file(docs_path("architecture.md"));
  for (const char* needle :
       {"due-round delay queue", "FaultPlan::gst", "delay_all", "pure-hash",
        "held, never lost", "delays_armed_", "coordinator_lag",
        "RoundDigest::delayed"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/architecture.md lacks '" << needle << "'";
  }
}

TEST(Docs, ArchitectureDocCoversTheSimdMessagePlane) {
  const auto markdown = read_file(docs_path("architecture.md"));
  for (const char* needle :
       {"SIMD message plane", "LFT_SIMD", "EngineConfig::simd", "RunOptions::simd",
        "detect_tier", "scalar tier is the reference", "huge page", "LFT_HUGEPAGES",
        "NUMA", "LFT_NUMA", "stolen_remote", "hotpath_baseline.json",
        "check_hotpath_regression", "bench_report", "bench/history"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/architecture.md lacks '" << needle << "'";
  }
}

TEST(Docs, ArchitectureDocCoversTheTransportSeam) {
  const auto markdown = read_file(docs_path("architecture.md"));
  for (const char* needle :
       {"transport seam", "Transport", "RoundDriver", "LoopbackTransport",
        "SocketTransport", "step_round", "twin property", "service_slot_commit",
        "docs/service.md"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/architecture.md lacks '" << needle << "'";
  }
}

TEST(Docs, ReadmeLinksTheDocsPlane) {
  const auto readme = read_file(std::string(LFT_SOURCE_DIR) + "/README.md");
  EXPECT_NE(readme.find("docs/architecture.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/scenarios.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/forensics.md"), std::string::npos)
      << "README must link the forensics plane";
  EXPECT_NE(readme.find("docs/service.md"), std::string::npos)
      << "README must link the service plane";
  EXPECT_NE(readme.find("lft_fleet"), std::string::npos)
      << "README must document the fleet quickstart";
  EXPECT_NE(readme.find("lft_forensics"), std::string::npos)
      << "README must document the forensics quickstart";
  EXPECT_NE(readme.find("lft_serve"), std::string::npos)
      << "README must document the service quickstart";
  EXPECT_NE(readme.find("LFT_SIMD"), std::string::npos)
      << "README must document the SIMD dispatch override";
  EXPECT_NE(readme.find("bench_report.py"), std::string::npos)
      << "README must document the perf-history dashboard";
}

/// Stable doc name of a wire message type. The switch has no default on
/// purpose: a new enumerator breaks the build here (-Werror=switch) until
/// it is named — and the test below demands docs/service.md documents it.
const char* msg_type_name(service::MsgType type) {
  using service::MsgType;
  switch (type) {
    case MsgType::kHello: return "kHello";
    case MsgType::kWelcome: return "kWelcome";
    case MsgType::kPropose: return "kPropose";
    case MsgType::kAck: return "kAck";
    case MsgType::kRead: return "kRead";
    case MsgType::kState: return "kState";
    case MsgType::kSubscribe: return "kSubscribe";
    case MsgType::kCommit: return "kCommit";
    case MsgType::kShutdown: return "kShutdown";
    case MsgType::kBye: return "kBye";
    case MsgType::kError: return "kError";
    case MsgType::kStatsRequest: return "kStatsRequest";
    case MsgType::kStatsReply: return "kStatsReply";
  }
  return nullptr;
}

TEST(DocsService, NamesEveryWireMessageType) {
  const auto markdown = read_file(docs_path("service.md"));
  using service::MsgType;
  for (const MsgType type :
       {MsgType::kHello, MsgType::kWelcome, MsgType::kPropose, MsgType::kAck,
        MsgType::kRead, MsgType::kState, MsgType::kSubscribe, MsgType::kCommit,
        MsgType::kShutdown, MsgType::kBye, MsgType::kError, MsgType::kStatsRequest,
        MsgType::kStatsReply}) {
    const std::string needle = std::string("`") + msg_type_name(type) + "`";
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/service.md lacks wire message " << needle;
  }
}

TEST(DocsService, CoversTheServicePlaneContracts) {
  const auto markdown = read_file(docs_path("service.md"));
  for (const char* needle :
       {"StateMachine", "dedup", "chained digest", "ReplicaGroup", "consensus slot",
        "RoundDriver", "LoopbackTransport", "SocketTransport", "service_slot_commit",
        "LFTTRACE", "lft_forensics replay", "lft_serve", "lft_bench_client",
        "5t < n", "BENCH_service"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/service.md lacks '" << needle << "'";
  }
}

TEST(DocsService, CoversThePipelinedReactorServicePlane) {
  const auto markdown = read_file(docs_path("service.md"));
  for (const char* needle :
       {"slot pipeline", "pipeline of depth", "take_head", "net::Reactor",
        "EpollLoop", "IoUringReactor", "LFT_IOURING", "falls back to epoll",
        "ByteRing", "writev", "EPOLLOUT", "backpressure", "max_pending",
        "--backend", "--pipeline", "--open-loop", "p99",
        "check_service_smoke.py", "service_baseline.json", "bench_service"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/service.md lacks '" << needle << "'";
  }
}

TEST(Docs, ArchitectureDocCoversTheServiceSeams) {
  const auto markdown = read_file(docs_path("architecture.md"));
  for (const char* needle :
       {"slot pipeline", "reactor seam", "net::Reactor", "EpollLoop",
        "IoUringReactor", "LFT_IOURING", "ByteRing", "FrameParser", "writev"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/architecture.md lacks '" << needle << "'";
  }
}

TEST(DocsObservability, CoversTheTelemetryPlane) {
  const auto markdown = read_file(docs_path("observability.md"));
  for (const char* needle :
       {"obs::Registry", "Counter", "Gauge", "Histogram", "log-linear",
        "single-writer", "merge", "Snapshot", "Prometheus", "`kStatsRequest`",
        "`kStatsReply`", "--stats-dump", "--server-stats", "--telemetry",
        "lft_service_request_ns", "lft_engine_step_ns", "lft_engine_lost_total",
        "bit-identical", "FleetRunner::telemetry", "EngineConfig::telemetry",
        "RunOptions::telemetry", "never changes a Report bit"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/observability.md lacks '" << needle << "'";
  }
}

TEST(DocsObservability, ReadmeAndArchitectureLinkTheTelemetryPlane) {
  const auto readme = read_file(std::string(LFT_SOURCE_DIR) + "/README.md");
  EXPECT_NE(readme.find("docs/observability.md"), std::string::npos)
      << "README must link the observability plane";
  EXPECT_NE(readme.find("--server-stats"), std::string::npos)
      << "README must document the live stats fetch";
  const auto architecture = read_file(docs_path("architecture.md"));
  for (const char* needle :
       {"telemetry plane", "obs::Registry", "kStatsRequest", "out-of-band"}) {
    EXPECT_NE(architecture.find(needle), std::string::npos)
        << "docs/architecture.md lacks '" << needle << "'";
  }
}

TEST(DocsForensics, NamesEveryDigestComponentOfTheLiveApi) {
  const auto markdown = read_file(docs_path("forensics.md"));
  // Every component the diff can report must be documented under its stable
  // name — walking the live enum keeps this in lockstep with the code.
  using forensics::Component;
  for (const Component c :
       {Component::kFaultActions, Component::kSent, Component::kLostCrash,
        Component::kLostFault, Component::kLostDead, Component::kDelayed,
        Component::kDelivered, Component::kActiveSet, Component::kPayload,
        Component::kBodies, Component::kRoundCount, Component::kFingerprint}) {
    const std::string needle = std::string("`") + forensics::component_name(c) + "`";
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/forensics.md lacks component " << needle;
  }
}

TEST(DocsForensics, CoversTheTraceFormatShrinkPassesAndEveryShrinkCase) {
  const auto markdown = read_file(docs_path("forensics.md"));
  for (const char* needle :
       {"LFTTRACE", "version", "Event ddmin", "Window narrowing",
        "Partition-set shrinking", "Size shrinking", "EngineConfig::trace",
        "bench_trace", "check_trace_overhead"}) {
    EXPECT_NE(markdown.find(needle), std::string::npos)
        << "docs/forensics.md lacks '" << needle << "'";
  }
  // Every registered shrink case is documented by name.
  for (const auto& c : forensics::shrink_cases()) {
    EXPECT_NE(markdown.find("`" + c.name + "`"), std::string::npos)
        << "docs/forensics.md lacks shrink case " << c.name;
  }
}

}  // namespace
}  // namespace lft
