// White-box tests for the protocol stages (the parts of Figures 1-4) and the
// local-probing primitive, including a direct validation of Proposition 1:
// probing survival in an execution coincides with the graph-theoretic
// dense-neighborhood / survival-subset predicates computed offline.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/bitset.hpp"
#include "core/local_probe.hpp"
#include "core/stages.hpp"
#include "core/tags.hpp"
#include "graph/families.hpp"
#include "graph/overlay.hpp"
#include "graph/properties.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"

namespace lft::core {
namespace {

// ---- LocalProbe unit tests ------------------------------------------------------

TEST(LocalProbe, SurvivesWithEnoughReceipts) {
  LocalProbe probe(3, 2);
  EXPECT_EQ(probe.duration(), 4);
  EXPECT_TRUE(probe.step(0));   // round 0: no receive check, sends
  EXPECT_TRUE(probe.step(2));   // rounds 1..2: enough receipts, keeps sending
  EXPECT_TRUE(probe.step(5));
  EXPECT_FALSE(probe.step(2));  // round 3 = gamma: checked but no send
  EXPECT_TRUE(probe.finished());
  EXPECT_TRUE(probe.survived());
}

TEST(LocalProbe, PausesPermanentlyOnStarvation) {
  LocalProbe probe(3, 2);
  EXPECT_TRUE(probe.step(0));
  EXPECT_FALSE(probe.step(1));  // 1 < delta: pause, stop sending
  EXPECT_FALSE(probe.step(99)); // pause is permanent within the instance
  EXPECT_FALSE(probe.step(99));
  EXPECT_TRUE(probe.finished());
  EXPECT_FALSE(probe.survived());
}

TEST(LocalProbe, DeltaZeroAlwaysSurvives) {
  LocalProbe probe(2, 0);
  EXPECT_TRUE(probe.step(0));
  EXPECT_TRUE(probe.step(0));
  EXPECT_FALSE(probe.step(0));
  EXPECT_TRUE(probe.survived());
}

TEST(LocalProbe, FirstRoundReceiptsNotChecked) {
  // Nothing can arrive before the first sends; round 0 must not pause.
  LocalProbe probe(2, 5);
  EXPECT_TRUE(probe.step(0));
  EXPECT_FALSE(probe.step(1));  // now the check applies
  EXPECT_FALSE(probe.survived());
}

// ---- Stage test harness -----------------------------------------------------------

/// Runs one stage type at every node over the engine and returns the states.
class StageHarness {
 public:
  template <typename MakeStage>
  static std::vector<BinaryState> run(NodeId n, std::span<const int> candidates,
                                      MakeStage make_stage,
                                      std::unique_ptr<sim::FaultInjector> adversary = nullptr,
                                      std::int64_t budget = 0) {
    sim::EngineConfig config;
    config.crash_budget = budget;
    sim::Engine engine(n, config);
    std::vector<StageProcess*> procs;
    for (NodeId v = 0; v < n; ++v) {
      auto proc = std::make_unique<StageProcess>(v);
      proc->state().candidate = candidates[static_cast<std::size_t>(v)];
      proc->add_stage(make_stage(v, proc->state()));
      procs.push_back(proc.get());
      engine.set_process(v, std::move(proc));
    }
    if (adversary) engine.add_fault_injector(std::move(adversary));
    engine.run();
    std::vector<BinaryState> states;
    states.reserve(static_cast<std::size_t>(n));
    for (auto* p : procs) states.push_back(p->state());
    return states;
  }
};

// ---- FloodRumorStage -----------------------------------------------------------------

TEST(FloodRumorStage, PropagatesOneThroughConnectedGraph) {
  const NodeId n = 16;
  auto g = std::make_shared<const graph::Graph>(graph::ring_graph(n));
  std::vector<int> candidates(n, 0);
  candidates[3] = 1;
  const auto states = StageHarness::run(n, candidates, [&](NodeId self, BinaryState& st) {
    return std::make_unique<FloodRumorStage>(self, n, g, n - 1, st);
  });
  for (const auto& st : states) EXPECT_EQ(st.candidate, 1);
}

TEST(FloodRumorStage, AllZeroStaysSilent) {
  const NodeId n = 12;
  auto g = std::make_shared<const graph::Graph>(graph::complete_graph(n));
  std::vector<int> candidates(n, 0);
  sim::EngineConfig config;
  sim::Engine engine(n, config);
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    proc->add_stage(std::make_unique<FloodRumorStage>(v, n, g, 5, proc->state()));
    engine.set_process(v, std::move(proc));
  }
  const auto report = engine.run();
  EXPECT_EQ(report.metrics.messages_total, 0) << "no rumor 1 means no messages at all";
}

TEST(FloodRumorStage, NonMembersDoNotParticipate) {
  const NodeId n = 10;
  const NodeId members = 5;
  auto g = std::make_shared<const graph::Graph>(graph::complete_graph(members));
  std::vector<int> candidates(n, 0);
  candidates[7] = 1;  // a non-member holds 1: must not spread
  const auto states = StageHarness::run(n, candidates, [&](NodeId self, BinaryState& st) {
    return std::make_unique<FloodRumorStage>(self, members, g, 4, st);
  });
  for (NodeId v = 0; v < members; ++v) {
    EXPECT_EQ(states[static_cast<std::size_t>(v)].candidate, 0);
  }
}

TEST(FloodRumorStage, EachMemberForwardsAtMostOnce) {
  const NodeId n = 8;
  auto g = std::make_shared<const graph::Graph>(graph::complete_graph(n));
  std::vector<int> candidates(n, 1);  // everyone starts with 1
  sim::Engine engine(n, {});
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    proc->state().candidate = 1;
    proc->add_stage(std::make_unique<FloodRumorStage>(v, n, g, 6, proc->state()));
    engine.set_process(v, std::move(proc));
  }
  const auto report = engine.run();
  EXPECT_EQ(report.metrics.messages_total, static_cast<std::int64_t>(n) * (n - 1));
}

// ---- ProbeStage and Proposition 1 -------------------------------------------------------

TEST(ProbeStage, AllSurviveWithoutCrashes) {
  const NodeId n = 32;
  auto g = std::make_shared<const graph::Graph>(graph::make_overlay(n, 6, 1));
  std::vector<int> candidates(n, 0);
  const auto states = StageHarness::run(n, candidates, [&](NodeId self, BinaryState& st) {
    return std::make_unique<ProbeStage>(self, n, g, 4, 3, st, true);
  });
  for (const auto& st : states) {
    EXPECT_TRUE(st.survived_probe);
    EXPECT_TRUE(st.has_value);
  }
}

TEST(ProbeStage, Proposition1SurvivalMatchesGraphPredicates) {
  // Proposition 1: members of a delta-survival set of the end-alive set
  // survive probing; nodes with no dense neighborhood in the start-alive
  // set do not. Crash a burst at round 0, so B1 = B2 = alive set.
  const NodeId n = 64;
  const int delta = 3;
  const int gamma = 2 + 6;
  auto g = std::make_shared<const graph::Graph>(graph::make_overlay(n, 8, 2));
  std::vector<int> candidates(n, 0);
  const std::int64_t t = 16;
  auto schedule = sim::burst_crash_schedule(n, t, 0, 99);
  DynamicBitset alive(static_cast<std::size_t>(n));
  alive.set_all();
  for (const auto& ev : schedule) alive.set(static_cast<std::size_t>(ev.node), false);

  const auto states = StageHarness::run(
      n, candidates,
      [&](NodeId self, BinaryState& st) {
        return std::make_unique<ProbeStage>(self, n, g, gamma, delta, st, false);
      },
      sim::make_scheduled(std::move(schedule)), t);

  const auto core = graph::survival_subset(*g, alive, delta);
  for (NodeId v = 0; v < n; ++v) {
    if (!alive.test(static_cast<std::size_t>(v))) continue;
    const bool survived = states[static_cast<std::size_t>(v)].survived_probe;
    if (core.test(static_cast<std::size_t>(v))) {
      EXPECT_TRUE(survived) << "survival-set member " << v << " must survive probing";
    }
    if (!graph::has_dense_neighborhood(*g, v, gamma, delta, alive)) {
      EXPECT_FALSE(survived) << "node " << v << " without dense neighborhood survived";
    }
    if (survived) {
      EXPECT_TRUE(graph::has_dense_neighborhood(*g, v, gamma, delta, alive))
          << "survivor " << v << " must have a dense neighborhood";
    }
  }
}

TEST(ProbeStage, IsolatedNodeDoesNotSurvive) {
  const NodeId n = 20;
  auto g = std::make_shared<const graph::Graph>(graph::star_graph(n));
  std::vector<int> candidates(n, 0);
  // Crash the hub at round 0: every leaf is isolated.
  const auto states = StageHarness::run(
      n, candidates,
      [&](NodeId self, BinaryState& st) {
        return std::make_unique<ProbeStage>(self, n, g, 3, 1, st, true);
      },
      sim::make_scheduled({sim::CrashEvent{0, 0, 0.0}}), 1);
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_FALSE(states[static_cast<std::size_t>(v)].survived_probe) << v;
  }
}

TEST(ProbeStage, RumorOneLiftsCandidateDuringProbing) {
  // Stipulation (b) of Figure 1: receiving rumor 1 during probing lifts a
  // zero candidate.
  const NodeId n = 8;
  auto g = std::make_shared<const graph::Graph>(graph::complete_graph(n));
  std::vector<int> candidates(n, 0);
  candidates[0] = 1;
  const auto states = StageHarness::run(n, candidates, [&](NodeId self, BinaryState& st) {
    return std::make_unique<ProbeStage>(self, n, g, 4, 2, st, true);
  });
  for (const auto& st : states) {
    EXPECT_EQ(st.candidate, 1);
    EXPECT_EQ(st.value, 1u);
  }
}

// ---- NotifyRelatedStage -------------------------------------------------------------------

TEST(NotifyRelatedStage, EveryNonLittleHearsItsResidueClass) {
  const NodeId n = 23;
  const NodeId little = 5;
  std::vector<int> candidates(n, 0);
  sim::Engine engine(n, {});
  std::vector<StageProcess*> procs;
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    if (v < little) {
      proc->state().has_value = true;
      proc->state().value = 40 + static_cast<std::uint64_t>(v);  // per-little value
    }
    proc->add_stage(std::make_unique<NotifyRelatedStage>(v, n, little, proc->state()));
    procs.push_back(proc.get());
    engine.set_process(v, std::move(proc));
  }
  engine.run();
  for (NodeId v = little; v < n; ++v) {
    const auto& st = procs[static_cast<std::size_t>(v)]->state();
    EXPECT_TRUE(st.has_value);
    EXPECT_EQ(st.value, 40 + static_cast<std::uint64_t>(v % little)) << v;
  }
}

TEST(NotifyRelatedStage, UndecidedLittleSendsNothing) {
  const NodeId n = 12;
  const NodeId little = 3;
  sim::Engine engine(n, {});
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    proc->add_stage(std::make_unique<NotifyRelatedStage>(v, n, little, proc->state()));
    engine.set_process(v, std::move(proc));
  }
  const auto report = engine.run();
  EXPECT_EQ(report.metrics.messages_total, 0);
}

// ---- SpreadFloodStage ------------------------------------------------------------------------

TEST(SpreadFloodStage, SpreadsToAllOnConnectedGraphWithoutCrashes) {
  const NodeId n = 64;
  auto h = std::make_shared<const graph::Graph>(graph::make_overlay(n, 8, 3));
  sim::Engine engine(n, {});
  std::vector<StageProcess*> procs;
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    if (v == 0) {
      proc->state().has_value = true;
      proc->state().value = 9;
    }
    proc->add_stage(std::make_unique<SpreadFloodStage>(v, h, 3 * 7, proc->state()));
    procs.push_back(proc.get());
    engine.set_process(v, std::move(proc));
  }
  engine.run();
  for (auto* p : procs) {
    EXPECT_TRUE(p->state().has_value);
    EXPECT_EQ(p->state().value, 9u);
  }
}

TEST(SpreadFloodStage, ForwardsOnlyOnce) {
  const NodeId n = 10;
  auto h = std::make_shared<const graph::Graph>(graph::complete_graph(n));
  sim::Engine engine(n, {});
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    proc->state().has_value = true;  // everyone already decided
    proc->state().value = 1;
    proc->add_stage(std::make_unique<SpreadFloodStage>(v, h, 6, proc->state()));
    engine.set_process(v, std::move(proc));
  }
  const auto report = engine.run();
  EXPECT_EQ(report.metrics.messages_total, static_cast<std::int64_t>(n) * (n - 1));
}

// ---- InquiryPhasesStage -------------------------------------------------------------------------

TEST(InquiryPhasesStage, UndecidedAdoptFromDecidedNeighbors) {
  const NodeId n = 40;
  std::vector<graph::PhaseGraph> graphs{
      std::make_shared<const graph::Graph>(graph::complete_graph(n))};
  sim::Engine engine(n, {});
  std::vector<StageProcess*> procs;
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    if (v % 4 == 0) {
      proc->state().has_value = true;
      proc->state().value = 5;
    }
    proc->add_stage(std::make_unique<InquiryPhasesStage>(v, graphs, proc->state()));
    procs.push_back(proc.get());
    engine.set_process(v, std::move(proc));
  }
  engine.run();
  for (auto* p : procs) {
    EXPECT_TRUE(p->state().has_value);
    EXPECT_EQ(p->state().value, 5u);
  }
}

TEST(InquiryPhasesStage, NobodyDecidedMeansNoReplies) {
  const NodeId n = 10;
  std::vector<graph::PhaseGraph> graphs{
      std::make_shared<const graph::Graph>(graph::complete_graph(n))};
  sim::Engine engine(n, {});
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    proc->add_stage(std::make_unique<InquiryPhasesStage>(v, graphs, proc->state()));
    engine.set_process(v, std::move(proc));
  }
  const auto report = engine.run();
  // Inquiries flow (everyone undecided) but no replies come back.
  EXPECT_EQ(report.metrics.messages_total, static_cast<std::int64_t>(n) * (n - 1));
  EXPECT_EQ(report.decided_count(), 0);
}

// ---- PullStage -------------------------------------------------------------------------------------

TEST(PullStage, StragglerPullsFromTargetsAndCountsFallback) {
  const NodeId n = 12;
  const NodeId targets = 4;
  sim::Engine engine(n, {});
  std::vector<StageProcess*> procs;
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    if (v < targets) {
      proc->state().has_value = true;
      proc->state().value = 3;
    }
    proc->add_stage(std::make_unique<PullStage>(v, targets, proc->state(),
                                                /*fallback_metric=*/true));
    procs.push_back(proc.get());
    engine.set_process(v, std::move(proc));
  }
  const auto report = engine.run();
  for (auto* p : procs) EXPECT_TRUE(p->state().has_value);
  EXPECT_EQ(report.metrics.fallback_pulls, static_cast<std::int64_t>(n - targets));
}

TEST(PullStage, DecidedNodesStayQuiet) {
  const NodeId n = 6;
  sim::Engine engine(n, {});
  for (NodeId v = 0; v < n; ++v) {
    auto proc = std::make_unique<StageProcess>(v);
    proc->state().has_value = true;
    proc->state().value = 1;
    proc->add_stage(std::make_unique<PullStage>(v, n, proc->state(), true));
    engine.set_process(v, std::move(proc));
  }
  const auto report = engine.run();
  EXPECT_EQ(report.metrics.messages_total, 0);
  EXPECT_EQ(report.metrics.fallback_pulls, 0);
}

}  // namespace
}  // namespace lft::core
