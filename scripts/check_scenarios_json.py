#!/usr/bin/env python3
"""Schema + determinism check for the scenario runner's --json output.

Runs the `lft_scenarios` binary twice with the same seed over a scenario
selection, then validates the emitted JSON:
  * every row carries the full schema (scenario, protocol, fault, n, t,
    seed, rounds, messages, bits, wall_ms, fingerprint, ok) with sane types
    and positive counts;
  * every row reports ok == "yes" (the scenario invariant held);
  * the (scenario -> fingerprint) map is identical across the two runs —
    same seed must give bit-identical Reports (wall_ms may differ).

Registered as a CTest (`scenarios_json_schema`) so the JSON artifact schema
CI archives cannot drift silently.

Usage: check_scenarios_json.py LFT_SCENARIOS_BINARY [--scenarios a,b,c]
                               [--seed N] [--workdir DIR]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REQUIRED_FIELDS = {
    "scenario": str,
    "protocol": str,
    "fault": str,
    "n": int,
    "t": int,
    "seed": int,
    "rounds": int,
    "messages": int,
    "bits": int,
    "wall_ms": (int, float),
    "fingerprint": int,
    "ok": str,
}

DEFAULT_SCENARIOS = "crash_staggered_drip,omission_send_quorum,byz_silent_little"


def run_once(binary: str, scenarios: str, seed: int, json_path: str) -> None:
    cmd = [binary, f"--run={scenarios}", f"--seed={seed}", f"--json={json_path}"]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")


def load_rows(json_path: str, scenario_count: int) -> list:
    with open(json_path, encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise SystemExit(f"FAIL: {json_path} is not a JSON array")
    if len(rows) != scenario_count:
        raise SystemExit(
            f"FAIL: {json_path} has {len(rows)} rows, expected {scenario_count}")
    return rows


def check_row_order(rows: list, scenarios: str) -> None:
    """A comma-separated --run must produce one row per name, in CSV order."""
    requested = [s for s in scenarios.split(",") if s]
    emitted = [row.get("scenario") for row in rows]
    if emitted != requested:
        raise SystemExit(
            f"FAIL: --run={scenarios} emitted rows {emitted}, expected {requested}")


def check_schema(rows: list) -> None:
    for row in rows:
        for field, types in REQUIRED_FIELDS.items():
            if field not in row:
                raise SystemExit(f"FAIL: row {row.get('scenario', '?')} lacks '{field}'")
            if not isinstance(row[field], types):
                raise SystemExit(
                    f"FAIL: row {row['scenario']} field '{field}' has type "
                    f"{type(row[field]).__name__}")
        if row["ok"] != "yes":
            raise SystemExit(f"FAIL: scenario {row['scenario']} reported ok={row['ok']}")
        for positive in ("n", "rounds", "messages", "bits"):
            if row[positive] <= 0:
                raise SystemExit(
                    f"FAIL: scenario {row['scenario']} has {positive}={row[positive]}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the built lft_scenarios binary")
    parser.add_argument("--scenarios", default=DEFAULT_SCENARIOS,
                        help="comma-separated scenario names to run")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workdir", default=None,
                        help="directory for the JSON outputs (default: temp dir)")
    args = parser.parse_args()

    scenario_count = len([s for s in args.scenarios.split(",") if s])
    workdir = args.workdir or tempfile.mkdtemp(prefix="lft_scenarios_json_")

    fingerprints = []
    for attempt in (1, 2):
        json_path = os.path.join(workdir, f"scenarios_{attempt}.json")
        run_once(args.binary, args.scenarios, args.seed, json_path)
        rows = load_rows(json_path, scenario_count)
        check_row_order(rows, args.scenarios)
        check_schema(rows)
        fingerprints.append({row["scenario"]: row["fingerprint"] for row in rows})

    if fingerprints[0] != fingerprints[1]:
        diff = {
            name: (fingerprints[0].get(name), fingerprints[1].get(name))
            for name in set(fingerprints[0]) | set(fingerprints[1])
            if fingerprints[0].get(name) != fingerprints[1].get(name)
        }
        raise SystemExit(f"FAIL: same-seed fingerprints differ between runs: {diff}")

    print(f"OK: {scenario_count} scenarios, schema valid, "
          f"fingerprints stable across two seed-{args.seed} runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
