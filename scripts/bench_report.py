#!/usr/bin/env python3
"""Perf-history dashboard for the engine hot path.

Reads the checked-in measurement points under bench/history/ (one JSON file
per recorded point, lexicographic file order = chronological order), plus an
optional just-measured rows file, and renders a per-benchmark trend table:
p50/p95 items/s per point and tier, the delta against the previous point of
the same (benchmark, tier) series, and a regression flag when a series drops
more than --tolerance below its predecessor.

History point schema (see bench/history/README.md):
  {
    "label": "...",            # short name shown in the table
    "date": "YYYY-MM-DD",
    "commit": "...",           # abbreviated hash the point was measured at
    "machine": "...",
    "rows": [ {"bench": ..., "simd": ..., "items_per_second": ...}, ... ]
  }
Rows repeat per benchmark repetition; the report reduces them to p50/p95.
The rows array is exactly what engine_hotpath --json emits, so recording a
new point is: run the bench, wrap the rows, drop the file in bench/history/.

Rows that additionally carry request-latency fields (p50_ms/p95_ms/p99_ms,
as lft_bench_client --json emits — optionally with the server-side
server_p50_ms/server_p99_ms fields from --server-stats) also render a
"request latency" section: the latency trend per (benchmark, tier) series
alongside the throughput trend. Latency is report-only, never a regression
gate.

Usage: bench_report.py [--history DIR] [--latest ROWS_JSON --label NAME]
           [--out PATH] [--check] [--tolerance 0.25]

--check exits nonzero when any series regresses beyond the tolerance —
CI runs the script in this mode over history + the fresh measurement, then
archives the rendered report as a build artifact.
"""

import argparse
import json
import os
import sys


def percentile(values, fraction):
    """Nearest-rank percentile; robust for the tiny rep counts we record."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def load_points(history_dir):
    points = []
    for name in sorted(os.listdir(history_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(history_dir, name)
        with open(path, encoding="utf-8") as f:
            point = json.load(f)
        point.setdefault("label", os.path.splitext(name)[0])
        points.append(point)
    return points


def reduce_point(point):
    """{(bench, simd) -> {"p50": ..., "p95": ..., "reps": N}}."""
    samples = {}
    for row in point.get("rows", []):
        ips = row.get("items_per_second")
        if ips is None:
            continue
        samples.setdefault((row["bench"], row.get("simd", "?")), []).append(ips)
    return {
        key: {
            "p50": percentile(vals, 0.50),
            "p95": percentile(vals, 0.95),
            "reps": len(vals),
        }
        for key, vals in samples.items()
    }


def reduce_latency(point):
    """{(bench, simd) -> {field -> median}} for rows carrying latency fields."""
    samples = {}
    fields = ("p50_ms", "p95_ms", "p99_ms", "server_p50_ms", "server_p99_ms")
    for row in point.get("rows", []):
        if row.get("p50_ms") is None:
            continue
        key = (row.get("bench", "?"), row.get("simd", "?"))
        per_field = samples.setdefault(key, {})
        for field in fields:
            if row.get(field) is not None:
                per_field.setdefault(field, []).append(row[field])
    return {
        key: {field: percentile(vals, 0.50) for field, vals in per_field.items()}
        for key, per_field in samples.items()
    }


def render_latency(points, lines):
    """Appends the request-latency trend section (report-only, no gating)."""
    reduced = [reduce_latency(p) for p in points]
    series = sorted({key for stats in reduced for key in stats})
    if not series:
        return
    lines.append("## request latency (ms, report-only)")
    lines.append(f"{'point':<24} {'bench':<24} {'p50':>8} {'p95':>8} {'p99':>8} "
                 f"{'srv p50':>8} {'srv p99':>8}")
    for point, stats in zip(points, reduced):
        for (bench, _tier), s in sorted(stats.items()):
            def cell(field):
                return f"{s[field]:8.3f}" if field in s else f"{'-':>8}"
            lines.append(f"{point['label']:<24} {bench:<24} {cell('p50_ms')} "
                         f"{cell('p95_ms')} {cell('p99_ms')} "
                         f"{cell('server_p50_ms')} {cell('server_p99_ms')}")
    lines.append("")


def fmt_mps(value):
    return f"{value / 1e6:8.2f}M"


def render(points, tolerance):
    """Returns (report lines, regression flags)."""
    reduced = [reduce_point(p) for p in points]
    benches = sorted({bench for stats in reduced for (bench, _) in stats})
    lines = ["# Engine hot-path perf history", ""]
    lines.append("Points (oldest first):")
    for point in points:
        lines.append(
            f"  * {point['label']}: {point.get('date', '?')}"
            f" @ {point.get('commit', '?')} on {point.get('machine', '?')}")
    lines.append("")

    flags = []
    for bench in benches:
        lines.append(f"## {bench}")
        lines.append(f"{'point':<24} {'tier':<8} {'p50':>10} {'p95':>10} "
                     f"{'vs prev':>8}  flag")
        previous = {}  # tier -> p50 of the last point carrying this series
        for point, stats in zip(points, reduced):
            for (b, tier), s in sorted(stats.items()):
                if b != bench:
                    continue
                delta = ""
                flag = ""
                if tier in previous:
                    ratio = s["p50"] / previous[tier]
                    delta = f"{(ratio - 1) * 100:+7.1f}%"
                    if ratio < 1 - tolerance:
                        flag = "REGRESSION"
                        flags.append(f"{bench} [{tier}] at {point['label']}: "
                                     f"{fmt_mps(previous[tier]).strip()} -> "
                                     f"{fmt_mps(s['p50']).strip()} items/s")
                previous[tier] = s["p50"]
                lines.append(f"{point['label']:<24} {tier:<8} {fmt_mps(s['p50'])} "
                             f"{fmt_mps(s['p95'])} {delta:>8}  {flag}")
        lines.append("")
    render_latency(points, lines)
    return lines, flags


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--history", default="bench/history",
                        help="directory of history point JSON files")
    parser.add_argument("--latest", default=None,
                        help="fresh engine_hotpath --json rows to append as a "
                             "trailing unrecorded point")
    parser.add_argument("--label", default="latest (uncommitted)",
                        help="label for the --latest point")
    parser.add_argument("--out", default=None, help="also write the report here")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when any series regresses beyond tolerance")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="fractional p50 drop that counts as a regression "
                             "(default 0.25)")
    args = parser.parse_args()

    points = load_points(args.history)
    if args.latest:
        with open(args.latest, encoding="utf-8") as f:
            points.append({"label": args.label, "rows": json.load(f)})
    if not points:
        print(f"error: no history points under {args.history}", file=sys.stderr)
        return 2

    lines, flags = render(points, args.tolerance)
    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)

    if flags:
        for flag in flags:
            print(f"regression: {flag}", file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
