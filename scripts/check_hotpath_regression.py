#!/usr/bin/env python3
"""Perf-regression gate for the engine hot path.

Compares a google-benchmark JSON output file (--benchmark_out) against the
checked-in baseline (bench/hotpath_baseline.json) and fails when any
benchmark's items_per_second drops more than 2x below its baseline value.
Benchmarks present in only one of the two files are reported but ignored, so
the gate keeps working while the bench suite grows.

Usage: check_hotpath_regression.py RESULTS_JSON BASELINE_JSON [--factor 2.0]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="google-benchmark --benchmark_out JSON")
    parser.add_argument("baseline", help="baseline JSON (name -> items_per_second)")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="fail when measured < baseline / factor (default 2)")
    args = parser.parse_args()

    with open(args.results, encoding="utf-8") as f:
        results = json.load(f)
    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    measured = {}
    for bench in results.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        ips = bench.get("items_per_second")
        if ips is not None:
            measured[bench["name"]] = ips

    failures = []
    checked = 0
    for name, floor_source in sorted(baseline.items()):
        if name.startswith("_"):
            continue  # comment keys
        if name not in measured:
            print(f"note: baseline entry {name!r} not in results, skipped")
            continue
        checked += 1
        floor = floor_source / args.factor
        got = measured[name]
        ratio = got / floor_source
        status = "OK " if got >= floor else "FAIL"
        print(f"{status} {name}: {got:,.0f} items/s "
              f"(baseline {floor_source:,.0f}, ratio {ratio:.2f}, floor {floor:,.0f})")
        if got < floor:
            failures.append(name)

    if checked == 0:
        print("error: no baseline benchmarks matched the results", file=sys.stderr)
        return 2
    if failures:
        print(f"perf regression: {', '.join(failures)} dropped >"
              f"{args.factor:.1f}x below baseline", file=sys.stderr)
        return 1
    print(f"perf gate passed ({checked} benchmarks within {args.factor:.1f}x of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
