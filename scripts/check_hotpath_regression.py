#!/usr/bin/env python3
"""Perf-regression gate for the engine hot path, per SIMD dispatch tier.

Compares measured send/deliver throughput against the checked-in baseline
(bench/hotpath_baseline.json) and fails when any benchmark's items_per_second
drops below its tier's floor (baseline / factor). CI runs the gate once per
tier it cares about: the scalar tier is held to the original pre-SIMD
baseline (vectorization must never tax the fallback path), and each SIMD
tier is held to its own recorded baseline.

Accepted results formats (auto-detected):
  * google-benchmark --benchmark_out JSON (object with a "benchmarks" list);
  * the engine_hotpath --json row array ([{"bench", "simd",
    "items_per_second", ...}, ...]).
With repetitions, aggregate rows are skipped / per-rep rows are reduced to
their median, so the gate sees one number per benchmark.

Accepted baseline formats:
  * v1: flat {benchmark name -> items_per_second} map (plus "_"-prefixed
    comment keys) — tier-blind, as before;
  * v2: {"_schema": 2, "tiers": {tier: {"factor": F, "benchmarks": {...}}}}
    — per-tier floors, each tier with its own slack factor.

The tier is taken from --tier, else from the results rows' "simd" field
(which engine_hotpath stamps on every row), else "scalar".

Usage: check_hotpath_regression.py RESULTS_JSON BASELINE_JSON
           [--tier scalar|avx2|avx512] [--factor F]
"""

import argparse
import json
import statistics
import sys


def load_measurements(path):
    """Returns ({benchmark name -> median items/s}, tier-or-None)."""
    with open(path, encoding="utf-8") as f:
        results = json.load(f)

    samples = {}
    tiers = set()
    if isinstance(results, list):  # engine_hotpath --json row array
        for row in results:
            ips = row.get("items_per_second")
            if ips is None:
                continue
            samples.setdefault(row["bench"], []).append(ips)
            if "simd" in row:
                tiers.add(row["simd"])
    else:  # google-benchmark --benchmark_out object
        for bench in results.get("benchmarks", []):
            # Skip aggregate rows (mean/median/stddev) if repetitions were used.
            if bench.get("run_type") == "aggregate":
                continue
            ips = bench.get("items_per_second")
            if ips is not None:
                samples.setdefault(bench["name"], []).append(ips)

    measured = {name: statistics.median(vals) for name, vals in samples.items()}
    tier = tiers.pop() if len(tiers) == 1 else None
    return measured, tier


def load_baseline(path, tier):
    """Returns ({benchmark name -> items/s floor source}, default factor)."""
    with open(path, encoding="utf-8") as f:
        baseline = json.load(f)

    if baseline.get("_schema") == 2:
        section = baseline.get("tiers", {}).get(tier)
        if section is None:
            return None, None
        return section["benchmarks"], section.get("factor")
    # v1: flat tier-blind map with "_"-prefixed comment keys.
    return {k: v for k, v in baseline.items() if not k.startswith("_")}, None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="results JSON (either accepted format)")
    parser.add_argument("baseline", help="baseline JSON (v1 flat or v2 per-tier)")
    parser.add_argument("--tier", default=None,
                        help="baseline tier section to gate against "
                             "(default: the results' own simd field)")
    parser.add_argument("--factor", type=float, default=None,
                        help="fail when measured < baseline / factor "
                             "(default: the tier's recorded factor, else 2)")
    args = parser.parse_args()

    measured, results_tier = load_measurements(args.results)
    tier = args.tier or results_tier or "scalar"
    benchmarks, tier_factor = load_baseline(args.baseline, tier)
    if benchmarks is None:
        print(f"error: baseline has no tier section {tier!r}", file=sys.stderr)
        return 2
    factor = args.factor if args.factor is not None else (tier_factor or 2.0)

    failures = []
    checked = 0
    for name, floor_source in sorted(benchmarks.items()):
        if name not in measured:
            print(f"note: baseline entry {name!r} not in results, skipped")
            continue
        checked += 1
        floor = floor_source / factor
        got = measured[name]
        ratio = got / floor_source
        status = "OK " if got >= floor else "FAIL"
        print(f"{status} [{tier}] {name}: {got:,.0f} items/s "
              f"(baseline {floor_source:,.0f}, ratio {ratio:.2f}, floor {floor:,.0f})")
        if got < floor:
            failures.append(name)

    if checked == 0:
        print("error: no baseline benchmarks matched the results", file=sys.stderr)
        return 2
    if failures:
        print(f"perf regression [{tier}]: {', '.join(failures)} dropped below "
              f"baseline / {factor:.2f}", file=sys.stderr)
        return 1
    print(f"perf gate passed [{tier}] "
          f"({checked} benchmarks within {factor:.2f}x of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
