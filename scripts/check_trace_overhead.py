#!/usr/bin/env python3
"""Recorder-overhead gate for the forensics trace hook.

Reads a google-benchmark JSON output of bench/bench_trace.cpp and compares
each BM_TraceOn*/N rate against its paired BM_TraceOff*/N baseline from the
same run (same binary, same machine, back-to-back — so no checked-in
baseline is needed).

The TraceSink cost contract is a dual bound: recording may cost at most 5%
of the untraced rate OR 5 ns per message, whichever allows more. The
absolute budget is what keeps the gate meaningful as the untraced baseline
improves: the recorder does a fixed amount of per-message digest work
(~8 multiply/xor ops for a header + 32-byte body), so a purely relative
bound would start failing every time the message plane gets faster — 5 ns
is what 5% meant at the baseline the contract was written against.

Usage: check_trace_overhead.py RESULTS_JSON [--threshold 0.05] [--budget-ns 5.0]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="google-benchmark --benchmark_out JSON")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="maximum allowed relative slowdown (default 0.05)")
    parser.add_argument("--budget-ns", type=float, default=5.0,
                        help="maximum allowed absolute cost per item in ns "
                             "(default 5.0); a pair passes if EITHER bound holds")
    args = parser.parse_args()

    with open(args.results, encoding="utf-8") as f:
        results = json.load(f)

    # Prefer the median aggregate (run with --benchmark_repetitions and
    # --benchmark_enable_random_interleaving so noise hits both sides):
    # single-run rates on shared CI machines are too noisy for a 5% gate.
    rates = {}
    medians = {}
    for bench in results.get("benchmarks", []):
        ips = bench.get("items_per_second")
        if ips is None:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[bench["run_name"]] = ips
        else:
            rates[bench["name"]] = ips
    if medians:
        rates = medians

    failures = []
    checked = 0
    for name, on_rate in sorted(rates.items()):
        if "/" not in name:
            continue
        prefix, arg = name.rsplit("/", 1)
        if not prefix.startswith("BM_TraceOn"):
            continue
        off_name = prefix.replace("BM_TraceOn", "BM_TraceOff", 1) + "/" + arg
        off_rate = rates.get(off_name)
        if off_rate is None:
            print(f"note: no {off_name} pair for {name}, skipped")
            continue
        checked += 1
        overhead = 1.0 - on_rate / off_rate
        cost_ns = (1.0 / on_rate - 1.0 / off_rate) * 1e9
        ok = overhead <= args.threshold or cost_ns <= args.budget_ns
        status = "OK " if ok else "FAIL"
        print(f"{status} {name}: {on_rate:,.0f} vs {off_name}: {off_rate:,.0f} "
              f"items/s (overhead {overhead * 100:+.1f}%, {cost_ns:+.2f} ns/item)")
        if not ok:
            failures.append(name)

    if checked == 0:
        print("error: no BM_TraceOn/BM_TraceOff pairs in the results", file=sys.stderr)
        return 2
    if failures:
        print(f"trace-recorder overhead above {args.threshold * 100:.0f}% and "
              f"{args.budget_ns:g} ns/item: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"trace overhead gate passed ({checked} pairs within "
          f"{args.threshold * 100:.0f}% or {args.budget_ns:g} ns/item)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
