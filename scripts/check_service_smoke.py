#!/usr/bin/env python3
"""Gate + schema check for the lft_bench_client --json artifact.

Validates the single service row CI archives from the service-smoke step:
  * the full schema is present (bench, mode, backend, pipeline, requests,
    clients, window, open_rate, slots, wall_ms, req_per_s, p50/p95/p99_ms,
    ok) with sane types;
  * ok == "yes" (the closed loop lost, duplicated, and reordered nothing);
  * the counters are consistent (requests/clients/slots positive, more
    consensus slots than requests is impossible under group commit).

With --baseline it additionally enforces the checked-in req/s floor
(bench/service_baseline.json): the row must meet every floor entry whose
backend/pipeline/mode it matches. With --expect-backend NAME it logs a
notice when the run degraded to a different backend (an io_uring request
on a kernel without io_uring falls back to epoll) — a notice, not a
failure, because the fallback is the designed behavior.

With --append-history DIR the row is wrapped into a bench/history/ point
(NNNN-label.json, the schema scripts/bench_report.py renders) so service
throughput joins the perf-history dashboard.

With --server-stats BENCH_service_stats.json it additionally prints an
advisory report from the server's own telemetry snapshot (the --stats-json
artifact of lft_bench_client --server-stats): server-side request-latency
p50/p99, pump-phase p99s, and the reactor batch profile. Report-only —
server-side latency has no hard gate; the gates stay on the client-measured
closed-loop numbers above.

Usage: check_service_smoke.py BENCH_service.json
           [--baseline bench/service_baseline.json]
           [--expect-backend auto|epoll|io_uring]
           [--server-stats BENCH_service_stats.json]
           [--append-history DIR --label NAME --commit HASH --machine DESC]
"""

import argparse
import datetime
import json
import os
import sys

REQUIRED_FIELDS = {
    "bench": str,
    "mode": str,
    "backend": str,
    "pipeline": int,
    "requests": int,
    "clients": int,
    "window": int,
    "open_rate": int,
    "slots": int,
    "wall_ms": (int, float),
    "req_per_s": (int, float),
    "p50_ms": (int, float),
    "p95_ms": (int, float),
    "p99_ms": (int, float),
    "ok": str,
}


def check_schema(row, path):
    for field, types in REQUIRED_FIELDS.items():
        if field not in row:
            raise SystemExit(f"FAIL: row lacks '{field}'")
        if not isinstance(row[field], types):
            raise SystemExit(
                f"FAIL: field '{field}' has type {type(row[field]).__name__}")

    if row["bench"] != "service_closed_loop":
        raise SystemExit(f"FAIL: bench={row['bench']}, expected service_closed_loop")
    if row["mode"] not in ("closed", "open"):
        raise SystemExit(f"FAIL: mode={row['mode']}")
    if row["ok"] != "yes":
        raise SystemExit(f"FAIL: the load loop reported ok={row['ok']}")
    for positive in ("requests", "clients", "slots"):
        if row[positive] <= 0:
            raise SystemExit(f"FAIL: {positive}={row[positive]}")
    if row["mode"] == "closed" and row["window"] <= 0:
        raise SystemExit(f"FAIL: closed loop with window={row['window']}")
    if row["mode"] == "open" and row["open_rate"] <= 0:
        raise SystemExit(f"FAIL: open loop with open_rate={row['open_rate']}")
    if row["slots"] > row["requests"]:
        raise SystemExit(
            f"FAIL: {row['slots']} slots for {row['requests']} requests — "
            "group commit must batch at least one command per slot")
    if not row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]:
        raise SystemExit(
            f"FAIL: percentiles not monotonic: p50 {row['p50_ms']} "
            f"p95 {row['p95_ms']} p99 {row['p99_ms']}")


def check_floor(row, baseline_path):
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    matched = False
    for floor in baseline.get("floors", []):
        if floor.get("backend") != row["backend"]:
            continue
        if floor.get("pipeline") not in (None, row["pipeline"]):
            continue
        if floor.get("mode", "closed") != row["mode"]:
            continue
        matched = True
        minimum = floor["min_req_per_s"]
        if row["req_per_s"] < minimum:
            raise SystemExit(
                f"FAIL: {row['req_per_s']:.0f} req/s on {row['backend']} "
                f"(pipeline {row['pipeline']}) is below the checked-in floor "
                f"of {minimum} req/s ({baseline_path})")
        print(f"floor: {row['req_per_s']:.0f} req/s >= {minimum} "
              f"({row['backend']}, pipeline {row['pipeline']})")
    if not matched:
        print(f"floor: no entry in {baseline_path} matches backend="
              f"{row['backend']} pipeline={row['pipeline']} mode={row['mode']}; "
              "nothing gated")


def report_server_stats(path):
    """Advisory print of the server-side telemetry snapshot (never fails)."""
    try:
        with open(path, encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, ValueError) as error:
        print(f"server stats: unreadable ({error}) — advisory only, continuing")
        return
    by_name = {row.get("metric"): row for row in rows if isinstance(row, dict)}

    def ms(metric, field):
        row = by_name.get(metric)
        if row is None or field not in row:
            return None
        return row[field] / 1e6

    latency_p50 = ms("lft_service_request_ns", "p50")
    latency_p99 = ms("lft_service_request_ns", "p99")
    if latency_p50 is None:
        print(f"server stats: no lft_service_request_ns row in {path}")
        return
    print(f"server stats (advisory): request latency p50={latency_p50:.3f}ms "
          f"p99={latency_p99:.3f}ms "
          f"({by_name['lft_service_request_ns'].get('count', '?')} samples)")
    phases = ", ".join(
        f"{phase}={ms(f'lft_service_pump_{phase}_ns', 'p99'):.3f}ms"
        for phase in ("enqueue", "step", "retire", "flush")
        if ms(f"lft_service_pump_{phase}_ns", "p99") is not None)
    if phases:
        print(f"server stats (advisory): pump phase p99 {phases}")
    batch = by_name.get("lft_service_reactor_batch")
    if batch is not None:
        print(f"server stats (advisory): reactor batch p50={batch.get('p50', '?')} "
              f"max={batch.get('max', '?')} over {batch.get('count', '?')} wakes")


def append_history(row, directory, label, commit, machine):
    existing = [name for name in os.listdir(directory)
                if name.endswith(".json") and name[:4].isdigit()]
    next_seq = 1 + max((int(name[:4]) for name in existing), default=0)
    point = {
        "label": label,
        "date": datetime.date.today().isoformat(),
        "commit": commit,
        "machine": machine,
        "rows": [row],
    }
    path = os.path.join(directory, f"{next_seq:04d}-{label}.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(point, f, indent=2)
        f.write("\n")
    print(f"history: appended {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", help="BENCH_service.json from lft_bench_client")
    parser.add_argument("--baseline", default=None,
                        help="service_baseline.json with req/s floor entries")
    parser.add_argument("--expect-backend", default=None,
                        help="backend the run was configured for; a mismatch "
                             "logs a fallback notice")
    parser.add_argument("--server-stats", default=None, metavar="STATS_JSON",
                        help="server telemetry snapshot (--stats-json artifact) "
                             "to report on; advisory only, never gates")
    parser.add_argument("--append-history", default=None, metavar="DIR",
                        help="wrap the row into a bench/history/ point")
    parser.add_argument("--label", default="service-smoke")
    parser.add_argument("--commit", default="?")
    parser.add_argument("--machine", default="?")
    args = parser.parse_args()

    with open(args.artifact, encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list) or len(rows) != 1:
        raise SystemExit(f"FAIL: {args.artifact} must be a one-row JSON array")
    row = rows[0]

    check_schema(row, args.artifact)

    if args.expect_backend and args.expect_backend != row["backend"]:
        print(f"NOTICE: requested backend '{args.expect_backend}' but the run "
              f"used '{row['backend']}' — the kernel lacks the requested "
              "backend and the reactor fell back (designed degradation)")

    if args.baseline:
        check_floor(row, args.baseline)

    if args.server_stats:
        report_server_stats(args.server_stats)

    if args.append_history:
        append_history(row, args.append_history, args.label, args.commit,
                       args.machine)

    print(f"OK: {row['requests']} requests over {row['clients']} clients in "
          f"{row['slots']} slots, {row['req_per_s']:.0f} req/s on "
          f"{row['backend']} (pipeline {row['pipeline']}, {row['mode']} loop), "
          "schema valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
