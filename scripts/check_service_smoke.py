#!/usr/bin/env python3
"""Schema check for the lft_bench_client --json artifact (BENCH_service.json).

Validates the single service_closed_loop row CI archives from the
service-smoke step:
  * the full schema is present (bench, requests, clients, window, slots,
    wall_ms, req_per_s, p50_ms, p95_ms, ok) with sane types;
  * ok == "yes" (the closed loop lost, duplicated, and reordered nothing);
  * the counters are consistent (requests/clients/slots positive, at least
    one consensus slot per commit batch is impossible to exceed requests).

Run by the CI service-smoke step after lft_bench_client exits, so the
artifact schema cannot drift silently.

Usage: check_service_smoke.py BENCH_service.json
"""

import json
import sys

REQUIRED_FIELDS = {
    "bench": str,
    "requests": int,
    "clients": int,
    "window": int,
    "slots": int,
    "wall_ms": (int, float),
    "req_per_s": (int, float),
    "p50_ms": (int, float),
    "p95_ms": (int, float),
    "ok": str,
}


def main() -> int:
    if len(sys.argv) != 2:
        raise SystemExit(f"usage: {sys.argv[0]} BENCH_service.json")
    path = sys.argv[1]
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list) or len(rows) != 1:
        raise SystemExit(f"FAIL: {path} must be a one-row JSON array")
    row = rows[0]

    for field, types in REQUIRED_FIELDS.items():
        if field not in row:
            raise SystemExit(f"FAIL: row lacks '{field}'")
        if not isinstance(row[field], types):
            raise SystemExit(
                f"FAIL: field '{field}' has type {type(row[field]).__name__}")

    if row["bench"] != "service_closed_loop":
        raise SystemExit(f"FAIL: bench={row['bench']}, expected service_closed_loop")
    if row["ok"] != "yes":
        raise SystemExit(f"FAIL: the closed loop reported ok={row['ok']}")
    for positive in ("requests", "clients", "window", "slots"):
        if row[positive] <= 0:
            raise SystemExit(f"FAIL: {positive}={row[positive]}")
    if row["slots"] > row["requests"]:
        raise SystemExit(
            f"FAIL: {row['slots']} slots for {row['requests']} requests — "
            "group commit must batch at least one command per slot")
    if row["p50_ms"] > row["p95_ms"]:
        raise SystemExit(f"FAIL: p50 {row['p50_ms']} > p95 {row['p95_ms']}")

    print(f"OK: {row['requests']} requests over {row['clients']} clients in "
          f"{row['slots']} slots, {row['req_per_s']:.0f} req/s, schema valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
